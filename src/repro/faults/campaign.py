"""Seeded resilience campaigns: inject faults, demand bit-identical recovery.

A campaign runs a set of *targets* — small configurations of the evaluation
kernels (:mod:`repro.kernels`) plus the sanitizer's seeded-bug corpus
(:mod:`repro.sanitizer.corpus`) — three ways:

1. **baseline** — fault-free, serial executor.  The output arrays are the
   ground truth.
2. **serial+faults** — same run under a fresh :class:`~repro.faults.FaultPlan`
   (memory bit-flips, forced sharing overflow, transient atomics).  Every
   injected fault must be detected and recovered, and the outputs must be
   *bit-identical* to the baseline.
3. **fork+faults** — the parallel launch engine with worker crashes (and
   optionally hangs) layered on top.  The self-healing pool must retry,
   redistribute, or degrade — never change the answer.

Corpus cases run once clean and once under an active default plan; the
sanitizer must reach the same verdict (planted bugs stay caught — fault
recovery may not mask real bugs).

Because fault decisions are stateless hash draws
(see :meth:`repro.faults.FaultPlan.fires`) the whole campaign is a pure
function of its seed: the same seed yields an identical
:class:`ResilienceReport`, which is why the report carries no wall-clock
content.  The documented campaign seed is :data:`DEFAULT_SEED`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec

#: The documented campaign seed: CI and the test suite run this one.
DEFAULT_SEED = 2023

#: Injection probabilities for the kernel legs.  Chosen so every site fires
#: at least once across the default target set while keeping each leg fast.
BITFLIP_PROB = 1.0
OVERFLOW_PROB = 0.25
ATOMIC_PROB = 0.02
CRASH_PROB = 0.6


# ---------------------------------------------------------------------------
# Targets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelTarget:
    """One kernel configuration: ``run(device)`` returns (output, checked)."""

    name: str
    run: Callable[[object], Tuple[np.ndarray, bool]]


def _ideal(device):
    from repro.kernels import ideal

    data = ideal.build_data(device, n_rows=48)
    ideal.run_simd(device, data, simd_len=8, num_teams=4, team_size=32)
    return data.y.to_numpy(), data.check()


def _spmv(device):
    from repro.kernels import sparse_matvec

    data = sparse_matvec.build_data(device, n_rows=96, n_cols=96, mean_nnz=6.0)
    sparse_matvec.run_simd(device, data, simd_len=8, num_teams=8, team_size=32)
    return data.y.to_numpy(), data.check()


def _spmv_reduction(device):
    from repro.kernels import sparse_matvec

    data = sparse_matvec.build_data(device, n_rows=64, n_cols=64, mean_nnz=6.0)
    sparse_matvec.run_simd_reduction(
        device, data, simd_len=8, num_teams=8, team_size=32
    )
    return data.y.to_numpy(), data.check()


def _laplace3d(device):
    # Generic-mode variant: exercises the sharing space, so forced
    # ``sharing.overflow`` faults have somewhere to land.
    from repro.kernels import laplace3d

    data = laplace3d.build_data(device, nx=6, ny=6, nz=10)
    laplace3d.run(device, data, "generic_simd", simd_len=8, num_teams=4,
                  team_size=32)
    return data.y.to_numpy(), data.check()


def _su3(device):
    from repro.kernels import su3

    data = su3.build_data(device, sites=24)
    su3.run_simd(device, data, simd_len=4, num_teams=4, team_size=32)
    return data.c.to_numpy(), data.check()


TARGETS: Tuple[KernelTarget, ...] = (
    KernelTarget("ideal", _ideal),
    KernelTarget("spmv", _spmv),
    KernelTarget("spmv-reduction", _spmv_reduction),
    KernelTarget("laplace3d-generic", _laplace3d),
    KernelTarget("su3", _su3),
)

#: Corpus cases the campaign replays under an active fault plan.
DEFAULT_CORPUS = ("cross-round-race", "shared-missing-syncwarp",
                  "sharing-leak")


def target_names() -> List[str]:
    return [t.name for t in TARGETS]


def _target_by_name(name: str) -> KernelTarget:
    for t in TARGETS:
        if t.name == name:
            return t
    raise KeyError(f"no campaign target named {name!r}; have {target_names()}")


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


def serial_plan(seed: int) -> FaultPlan:
    """The serial-leg plan: every non-pool site armed."""
    return FaultPlan(seed=seed, specs=(
        FaultSpec("memory.bitflip", probability=BITFLIP_PROB, flips=2),
        FaultSpec("sharing.overflow", probability=OVERFLOW_PROB),
        FaultSpec("atomic.transient", probability=ATOMIC_PROB, attempts=2),
    ))


def fork_plan(seed: int, hang: bool = False) -> FaultPlan:
    """The fork-leg plan: serial sites plus worker crashes (and hangs)."""
    specs = [
        FaultSpec("worker.crash", probability=CRASH_PROB),
        FaultSpec("memory.bitflip", probability=BITFLIP_PROB, flips=2),
        FaultSpec("sharing.overflow", probability=OVERFLOW_PROB),
        FaultSpec("atomic.transient", probability=ATOMIC_PROB, attempts=2),
    ]
    if hang:
        # Exactly one deterministic hang: first chunk, first attempt.
        specs.insert(1, FaultSpec("worker.hang", match=(("chunk", 0),)))
    return FaultPlan(seed=seed, specs=tuple(specs))


def corpus_plan(seed: int) -> FaultPlan:
    """Corpus replays inject only launch-local, self-recovering faults."""
    return FaultPlan(seed=seed, specs=(
        FaultSpec("memory.bitflip", probability=BITFLIP_PROB),
        FaultSpec("atomic.transient", probability=ATOMIC_PROB, attempts=2),
    ))


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class ResilienceReport:
    """What a campaign did and whether every leg healed bit-identically.

    Deliberately free of wall-clock content: the same seed over the same
    target set produces an identical report (``to_dict()`` equality is the
    reproducibility contract the tests assert).
    """

    seed: int
    fork: bool
    #: The process-wide round-engine preference (``REPRO_ENGINE``) the
    #: campaign ran under — provenance for the report.  Fault-carrying
    #: launches always *execute* instrumented (active plans are a hook),
    #: so a ``jit``/``fast`` preference here documents the downgrade.
    engine: str = "auto"
    rows: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.rows) and all(r["ok"] for r in self.rows)

    @property
    def injected(self) -> int:
        return sum(r["injected"] for r in self.rows)

    @property
    def recovered(self) -> int:
        return sum(r["recovered"] for r in self.rows)

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "fork": self.fork,
            "engine": self.engine,
            "ok": self.ok,
            "injected": self.injected,
            "recovered": self.recovered,
            "rows": self.rows,
        }

    def text(self) -> str:
        lines = [f"resilience campaign (seed {self.seed})"]
        for r in self.rows:
            verdict = "ok" if r["ok"] else "FAIL"
            lines.append(
                f"  {verdict:4s} {r['target']:24s} {r['leg']:13s} "
                f"injected={r['injected']} recovered={r['recovered']} "
                f"unrecovered={r['unrecovered']} retries={r['retries']} "
                f"degradations={r['degradations']} identical={r['identical']}"
            )
        lines.append(
            f"  {'PASS' if self.ok else 'FAIL'}: "
            f"{self.recovered}/{self.injected} injected fault(s) recovered, "
            f"{sum(r['identical'] for r in self.rows)}/{len(self.rows)} "
            f"leg(s) bit-identical"
        )
        return "\n".join(lines)


def _row(target: str, leg: str, plan: FaultPlan, identical: bool,
         checked: bool) -> Dict:
    c = plan.counters
    return {
        "target": target,
        "leg": leg,
        "injected": c.injected,
        "detected": c.detected,
        "recovered": c.recovered,
        "unrecovered": c.unrecovered,
        "retries": c.chunk_retries + c.launch_retries,
        "degradations": c.degradations,
        "identical": bool(identical),
        "ok": bool(identical and checked and c.unrecovered == 0),
    }


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def run_campaign(
    seed: int = DEFAULT_SEED,
    kernels: Optional[Sequence[str]] = None,
    corpus: Optional[Sequence[str]] = DEFAULT_CORPUS,
    workers: int = 2,
    hang: bool = False,
) -> ResilienceReport:
    """Run a seeded campaign; return its :class:`ResilienceReport`.

    ``kernels`` selects targets by name (default: all of :data:`TARGETS`);
    ``corpus`` names sanitizer corpus cases to replay under faults (empty
    or ``None`` skips them).  ``workers`` sizes the fork leg's pool; the
    fork legs are skipped (and ``report.fork`` is False) when the platform
    cannot fork.  ``hang=True`` adds one deterministic worker hang per
    fork leg — slower (~1.5 s each), but exercises the watchdog end to end.
    """
    from repro.exec import ParallelExecutor, SerialExecutor, fork_available
    from repro.gpu.device import Device
    from repro.jit import default_engine

    targets = (tuple(TARGETS) if kernels is None
               else tuple(_target_by_name(n) for n in kernels))
    use_fork = fork_available() and workers > 1
    report = ResilienceReport(seed=seed, fork=use_fork, engine=default_engine())

    for target in targets:
        baseline, base_checked = target.run(Device(executor=SerialExecutor()))
        if not base_checked:
            raise AssertionError(
                f"campaign target {target.name!r} fails its own check "
                "without faults — fix the target, not the plan")

        legs = [("serial+faults", SerialExecutor(), serial_plan(seed))]
        if use_fork:
            legs.append((
                "fork+faults",
                ParallelExecutor(workers=workers, processes=True),
                fork_plan(seed, hang=hang),
            ))
        for leg_name, executor, plan in legs:
            out, checked = target.run(Device(executor=executor, faults=plan))
            identical = out.tobytes() == baseline.tobytes()
            report.rows.append(
                _row(target.name, leg_name, plan, identical, checked))

    for case_name in tuple(corpus or ()):
        report.rows.append(_corpus_row(case_name, seed, workers=None))

    return report


def _corpus_row(case_name: str, seed: int, workers) -> Dict:
    """Replay one corpus case clean and under faults; verdict must match."""
    from repro.faults import set_default_faults
    from repro.sanitizer import corpus as sancorpus

    case = sancorpus.by_name(case_name)
    clean = case.run(workers=workers)
    plan = corpus_plan(seed)
    set_default_faults(plan)
    try:
        faulty = case.run(workers=workers)
    finally:
        set_default_faults(None)
    same_verdict = faulty.caught == clean.caught
    row = _row(f"corpus/{case_name}", "sanitizer", plan,
               identical=same_verdict, checked=clean.caught)
    return row
