"""CLI: run a seeded fault-injection campaign.

Usage::

    python -m repro.faults                      # full campaign, seed 2023
    python -m repro.faults --seed 7             # another seed
    python -m repro.faults --kernels ideal su3  # subset of kernel targets
    python -m repro.faults --no-corpus          # skip sanitizer-corpus replays
    python -m repro.faults --hang               # add a worker hang per fork leg
    python -m repro.faults --json               # machine-readable report
    python -m repro.faults --list               # what can be targeted

Exit status is 0 when the campaign is clean — every injected fault was
recovered and every leg reproduced the fault-free serial output
bit-identically — and 1 otherwise.  The same seed always produces the
same report (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    from repro.faults import campaign

    ap = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="seeded fault-injection campaign over the evaluation "
                    "kernels and the sanitizer corpus",
    )
    ap.add_argument("--seed", type=int, default=campaign.DEFAULT_SEED,
                    help=f"campaign seed (default {campaign.DEFAULT_SEED})")
    ap.add_argument("--kernels", nargs="*", default=None, metavar="NAME",
                    help="kernel targets to run (default: all)")
    ap.add_argument("--corpus", nargs="*", default=None, metavar="CASE",
                    help="sanitizer corpus cases to replay under faults "
                         "(default: a small fixed set)")
    ap.add_argument("--no-corpus", action="store_true",
                    help="skip the corpus replays entirely")
    ap.add_argument("--workers", type=int, default=2,
                    help="pool size for the fork legs (default 2)")
    ap.add_argument("--hang", action="store_true",
                    help="inject one deterministic worker hang per fork leg "
                         "(exercises the watchdog; ~1.5s each)")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the report as JSON")
    ap.add_argument("--list", action="store_true", dest="list_targets",
                    help="list kernel targets and corpus cases, then exit")
    ns = ap.parse_args(argv)

    if ns.list_targets:
        from repro.sanitizer import corpus as sancorpus

        print("kernel targets (run with: --kernels NAME ...):")
        for name in campaign.target_names():
            print(f"  {name}")
        print("corpus cases (run with: --corpus CASE ...):")
        for case in sancorpus.CASES:
            print(f"  {case.name}")
        return 0

    if ns.no_corpus:
        corpus = ()
    elif ns.corpus is None:
        corpus = campaign.DEFAULT_CORPUS
    elif not ns.corpus:
        from repro.sanitizer import corpus as sancorpus

        corpus = tuple(c.name for c in sancorpus.CASES)
    else:
        corpus = tuple(ns.corpus)

    try:
        report = campaign.run_campaign(
            seed=ns.seed, kernels=ns.kernels, corpus=corpus,
            workers=ns.workers, hang=ns.hang,
        )
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")

    if ns.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
