"""Seeded, deterministic fault plans: what fails, where, and when.

A :class:`FaultPlan` is the injection plane's decision oracle.  Hook
points scattered through the stack (the worker pool, the block
scheduler's atomic path, the variable sharing space, the pre-launch
memory scrubber) ask it one question — ``plan.fires(site, **coords)`` —
and it answers *deterministically*: the decision is a pure hash of
``(seed, site, coords)``, not a sequential RNG draw.  That purity is the
whole design:

* a forked worker and its coordinator agree on whether a crash was
  injected without exchanging state;
* re-running a campaign with the same seed reproduces the identical
  fault schedule, hence the identical :class:`ResilienceReport`;
* the *off* path (no plan attached) costs exactly one ``is not None``
  test per hook site.

Hook sites (coordinates each site supplies):

=====================  =====================================================
``worker.crash``       ``chunk`` (first task index), ``attempt``
``worker.hang``        ``chunk``, ``attempt``
``memory.bitflip``     ``launch``, ``attempt``  (targets drawn from
                       :meth:`FaultPlan.rng`)
``sharing.overflow``   ``block``, ``group``, ``kind`` (currently "simd")
``atomic.transient``   ``block``, ``round``, ``lane``, ``attempt``
``serve.reject``       ``tenant``, ``seq`` (admission control in
                       :mod:`repro.serve.scheduler` — forces a typed
                       backpressure reject so clients' retry paths get
                       exercised deterministically)
``serve.conn_drop``    ``tenant``, ``seq`` (the TCP front door drops the
                       connection *after* executing but before the ack —
                       the classic exactly-once ambiguity the journal
                       dedup must resolve)
``serve.dispatch_stall``  ``batch`` (the dispatch thread stalls briefly
                       before running a batch, widening the window a
                       chaos kill lands mid-flight)
``journal.torn_write`` ``index`` (a journal append is truncated mid-record
                       and not fsynced — models power loss during the
                       write; replay must skip the torn record)
``lease.corrupt``      ``batch``, ``payload``, ``attempt`` (a warm-pool
                       result payload arrives corrupted; the lease
                       discards it and re-dispatches that payload)
=====================  =====================================================

Every spec carries an ``attempts`` bound: it only fires while the
``attempt`` coordinate is below it, which is how "transient" faults stop
firing once the recovery layer retries — a crash spec with
``attempts=1`` kills the first try and lets the retry through; one with
``attempts=99`` defeats every forked retry and forces the pool to
degrade in-process.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import FaultInjectionError

#: The hook points a spec may name.
SITES = (
    "worker.crash",
    "worker.hang",
    "memory.bitflip",
    "sharing.overflow",
    "atomic.transient",
    "serve.reject",
    "serve.conn_drop",
    "serve.dispatch_stall",
    "journal.torn_write",
    "lease.corrupt",
)

#: Cap on retained provenance entries (counters keep exact totals).
MAX_LOG = 1000


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: a site, a probability, and trigger predicates.

    ``probability`` is evaluated independently (and deterministically)
    per coordinate tuple.  ``attempts`` bounds the ``attempt`` coordinate
    the spec still fires for (1 = first try only).  ``match`` restricts
    firing to coordinate values, e.g. ``{"block": 3}`` or
    ``{"kind": "simd"}``.  For ``memory.bitflip``, ``flips`` is the cell
    count flipped per firing and ``repair`` selects whether the scrubber
    silently repairs the damage or surfaces a
    :class:`~repro.errors.MemoryFault`.
    """

    site: str
    probability: float = 1.0
    attempts: int = 1
    match: Tuple[Tuple[str, object], ...] = ()
    flips: int = 1
    repair: bool = True

    def __post_init__(self):
        if self.site not in SITES:
            raise FaultInjectionError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultInjectionError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.attempts < 1:
            raise FaultInjectionError("attempts must be >= 1")

    def matches(self, coords: Dict[str, object]) -> bool:
        if coords.get("attempt", 0) >= self.attempts:
            return False
        for key, want in self.match:
            if coords.get(key) != want:
                return False
        return True


@dataclass
class FaultCounters:
    """Plain-int fault/recovery statistics for one plan.

    Integer fields only, on purpose: the parallel launch engine merges
    side-state objects by numeric-field delta
    (:mod:`repro.exec.state`), so counts bumped inside forked workers
    travel back to the coordinator for free.
    """

    #: Faults injected, by site family.
    worker_crashes: int = 0
    worker_hangs: int = 0
    bitflips: int = 0
    forced_overflows: int = 0
    atomic_transients: int = 0
    forced_rejects: int = 0
    conn_drops: int = 0
    dispatch_stalls: int = 0
    torn_writes: int = 0
    lease_corruptions: int = 0
    #: Detection/recovery outcomes.
    detected: int = 0
    recovered: int = 0
    unrecovered: int = 0
    #: Recovery-layer actions.
    chunk_retries: int = 0
    redistributions: int = 0
    degradations: int = 0
    launch_retries: int = 0
    rollbacks: int = 0
    timeouts: int = 0

    @property
    def injected(self) -> int:
        return (self.worker_crashes + self.worker_hangs + self.bitflips
                + self.forced_overflows + self.atomic_transients
                + self.forced_rejects + self.conn_drops
                + self.dispatch_stalls + self.torn_writes
                + self.lease_corruptions)

    def as_dict(self) -> Dict[str, int]:
        out = dict(vars(self))
        out["injected"] = self.injected
        return out


_SITE_COUNTER = {
    "worker.crash": "worker_crashes",
    "worker.hang": "worker_hangs",
    "memory.bitflip": "bitflips",
    "sharing.overflow": "forced_overflows",
    "atomic.transient": "atomic_transients",
    "serve.reject": "forced_rejects",
    "serve.conn_drop": "conn_drops",
    "serve.dispatch_stall": "dispatch_stalls",
    "journal.torn_write": "torn_writes",
    "lease.corrupt": "lease_corruptions",
}


@dataclass(frozen=True)
class InjectedFault:
    """Provenance of one injected fault (what fired, where, outcome)."""

    site: str
    coords: Tuple[Tuple[str, object], ...]
    recovered: bool
    detail: str = ""

    def describe(self) -> str:
        where = ", ".join(f"{k}={v}" for k, v in self.coords)
        verdict = "recovered" if self.recovered else "UNRECOVERED"
        tail = f" ({self.detail})" if self.detail else ""
        return f"{self.site} [{where}] {verdict}{tail}"


class FaultPlan:
    """A seeded schedule of injected faults plus its outcome ledger.

    Decisions are stateless (see the module docstring); the mutable parts
    are the outcome ledger — :attr:`counters` (merged across forked
    workers via the side-state machinery) and :attr:`log` (provenance
    entries, complete for in-process execution, coordinator-side events
    only under forked workers).

    ``launch_index``/``launch_attempt`` are maintained by
    :meth:`repro.gpu.device.Device.launch`: the former counts logical
    launches the plan has seen (so campaign launches draw distinct fault
    schedules), the latter the retry attempt within the current launch.
    """

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = (),
                 scrub: bool = True) -> None:
        self.seed = int(seed)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        #: When True, launches verify pre-launch page checksums and repair
        #: bit-flips from the snapshot (ECC-style); when False, flips go
        #: undetected — useful for demonstrating why the scrub matters.
        self.scrub = bool(scrub)
        self.counters = FaultCounters()
        self.log: List[InjectedFault] = []
        self._log_overflow = 0
        self.launch_index = -1
        self.launch_attempt = 0

    # -- decisions ---------------------------------------------------------
    def _uniform(self, site: str, coords: Dict[str, object]) -> float:
        """Deterministic uniform draw in [0, 1) for one coordinate tuple."""
        key = f"{self.seed}|{site}|{sorted(coords.items())!r}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def fires(self, site: str, **coords) -> Optional[FaultSpec]:
        """The spec that injects a fault at this site/coords, if any."""
        for spec in self.specs:
            if spec.site != site or not spec.matches(coords):
                continue
            if spec.probability >= 1.0:
                return spec
            if self._uniform(site, coords) < spec.probability:
                return spec
        return None

    def rng(self, site: str, **coords) -> random.Random:
        """A deterministic RNG for drawing fault *targets* (e.g. which
        cell a bit-flip lands in), keyed exactly like :meth:`fires`."""
        key = f"{self.seed}|targets|{site}|{sorted(coords.items())!r}".encode()
        return random.Random(hashlib.blake2b(key, digest_size=8).hexdigest())

    # -- ledger ------------------------------------------------------------
    def record(self, site: str, coords: Dict[str, object], recovered: bool,
               detail: str = "") -> None:
        """Note one injected fault and its outcome."""
        c = self.counters
        setattr(c, _SITE_COUNTER[site], getattr(c, _SITE_COUNTER[site]) + 1)
        c.detected += 1
        if recovered:
            c.recovered += 1
        else:
            c.unrecovered += 1
        if len(self.log) < MAX_LOG:
            self.log.append(InjectedFault(
                site, tuple(sorted(coords.items())), recovered, detail))
        else:
            self._log_overflow += 1

    def summary(self) -> Dict[str, int]:
        """Counter snapshot (stable keys, ints) for reports/kc.extra."""
        return self.counters.as_dict()

    def describe(self) -> str:
        lines = [f"FaultPlan(seed={self.seed}, specs={len(self.specs)})"]
        for entry in self.log:
            lines.append("  " + entry.describe())
        if self._log_overflow:
            lines.append(f"  ... {self._log_overflow} more (log capped)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sites = sorted({s.site for s in self.specs})
        return f"FaultPlan(seed={self.seed}, sites={sites})"
