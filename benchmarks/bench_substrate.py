"""Micro-benchmarks of the simulator substrate itself.

These track the *interpreter's* wall-clock throughput (lane-steps per
second) so regressions in the scheduler hot path show up, and record the
cost-model outputs of canonical access patterns as a calibration record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_streaming(benchmark):
    """Vector triad over 4 blocks x 128 threads: pure event-loop speed."""

    def run():
        dev = Device(nvidia_a100())
        n = 4 * 128 * 8
        x = dev.from_array("x", np.arange(n, dtype=np.float64))
        y = dev.from_array("y", np.zeros(n))

        def k(tc, x, y):
            i = tc.global_tid
            while i < n:
                v = yield from tc.load(x, i)
                yield from tc.compute("fma")
                yield from tc.store(y, i, 2.0 * v)
                i += tc.block_dim * tc.num_blocks
        kc = dev.launch(k, 4, 128, args=(x, y))
        assert np.array_equal(y.to_numpy(), 2.0 * np.arange(n))
        return kc

    kc = benchmark(run)
    benchmark.extra_info["rounds"] = kc.rounds
    benchmark.extra_info["cycles"] = kc.cycles


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_barrier_heavy(benchmark):
    """Alternating compute/barrier: stresses the release scanner."""

    def run():
        dev = Device(nvidia_a100())

        def k(tc):
            for _ in range(64):
                yield from tc.compute("alu")
                yield from tc.syncthreads()

        return dev.launch(k, 2, 256)

    kc = benchmark(run)
    assert kc.syncblocks == 2 * 64
    benchmark.extra_info["sync_cycles"] = kc.sync_cycles


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_atomic_contention(benchmark):
    """All lanes hammer one address: atomic serialization path."""

    def run():
        dev = Device(nvidia_a100())
        acc = dev.alloc("acc", 1, np.int64)

        def k(tc, acc):
            for _ in range(16):
                yield from tc.atomic_add(acc, 0, 1)

        kc = dev.launch(k, 2, 128, args=(acc,))
        assert acc.read(0) == 2 * 128 * 16
        return kc

    kc = benchmark(run)
    benchmark.extra_info["atomic_conflicts"] = kc.total("atomic_conflicts")


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_parallel_engine(benchmark):
    """The streaming triad again, sharded over the parallel launch engine.

    Tracks the engine's overhead/speedup against the serial leg above;
    the cycle outputs must be identical (the engine may only change
    wall-clock, never results).
    """
    from repro.exec import ParallelExecutor
    from repro.exec.pool import fork_available

    def run():
        dev = Device(
            nvidia_a100(),
            executor=ParallelExecutor(processes=fork_available()),
        )
        n = 4 * 128 * 8
        x = dev.from_array("x", np.arange(n, dtype=np.float64))
        y = dev.from_array("y", np.zeros(n))

        def k(tc, x, y):
            i = tc.global_tid
            while i < n:
                v = yield from tc.load(x, i)
                yield from tc.compute("fma")
                yield from tc.store(y, i, 2.0 * v)
                i += tc.block_dim * tc.num_blocks
        kc = dev.launch(k, 4, 128, args=(x, y))
        assert np.array_equal(y.to_numpy(), 2.0 * np.arange(n))
        return kc

    kc = benchmark(run)
    benchmark.extra_info["rounds"] = kc.rounds
    benchmark.extra_info["cycles"] = kc.cycles


@pytest.mark.benchmark(group="substrate")
def test_coalescing_cost_calibration(benchmark):
    """Record the modelled cost ratio of scattered vs coalesced access."""

    def run():
        out = {}
        # One SM holding 8 warps: throughput terms decide, as on a loaded
        # device — a lone block would hide the difference under latency.
        n = 32 * 16 * 8
        for label, stride in (("coalesced", 1), ("scattered", 16)):
            dev = Device(nvidia_a100().with_overrides(num_sms=1))
            x = dev.from_array("x", np.zeros(n))

            def k(tc, x, stride=stride):
                for r in range(8):
                    idx = ((r * 32 + tc.block_id * 8 + tc.lane_id) * stride) % n
                    yield from tc.load(x, idx)

            out[label] = dev.launch(k, 8, 32, args=(x,)).cycles
        return out

    out = benchmark(run)
    ratio = out["scattered"] / out["coalesced"]
    benchmark.extra_info["scatter_penalty"] = round(ratio, 2)
    assert ratio > 1.0
