"""Micro-benchmarks of the simulator substrate itself.

These track the *interpreter's* wall-clock throughput (lane-steps per
second) so regressions in the scheduler hot path show up, and record the
cost-model outputs of canonical access patterns as a calibration record.

All setup — :class:`~repro.gpu.device.Device` construction, host array
allocation, buffer uploads — happens *outside* the benchmarked closures,
so the metric is pure event-loop throughput (the pre-refactor version of
this file timed device construction inside the closures, understating the
interpreter's true rate).

The headline legs are the **engine speedup gates**: the streaming and
generic-SIMD workloads run under the fast and instrumented round engines,
and the ``jit_*`` workloads run the trace-compiling JIT tier against the
instrumented engine (see ``docs/PERF.md``) — all interleaved within one
process and scored best-of-N so machine noise cancels out of the ratio.
Counters are asserted bit-exact between the engines on every measurement
(JIT telemetry keys stripped first) — the speedup claims are only
meaningful because the semantics are identical.  The JIT legs carry a
hard ``>= 10x`` floor in ``--check`` on top of the baseline tolerance.

Run standalone (prints BENCH lines, writes/checks ``BENCH_substrate.json``,
used by the CI ``perf-smoke`` job)::

    PYTHONPATH=src python benchmarks/bench_substrate.py
    PYTHONPATH=src python benchmarks/bench_substrate.py --check
    PYTHONPATH=src python benchmarks/bench_substrate.py --write-baseline

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_substrate.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np
import pytest

from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.gpu.events import (
    AtomicOp,
    Load,
    Shuffle,
    Store,
    intern_compute,
    intern_syncblock,
    intern_syncwarp,
)

#: Committed baseline that ``--check`` compares against.
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_substrate.json")

#: Relative tolerance on the fast/instrumented speedup ratio.  The ratio is
#: machine-relative (both legs run in the same process), so it is far more
#: stable across hosts than absolute lane-steps/s, which are recorded but
#: not gated.
TOLERANCE_PCT = 25

#: Interleaved measurement pairs per workload; the score is best-of.
DEFAULT_REPS = 7

#: Hard floor on the JIT-vs-instrumented ratio for the ``jit_*`` gate
#: workloads — the tier's acceptance bar, enforced by ``--check``
#: regardless of what the committed baseline says.
JIT_MIN_SPEEDUP = 10.0

#: Hard floor on the incremental-vs-full snapshot ratio for the
#: ``snapshot_rollback`` workload.  This gate is floor-only (never
#: baseline-relative): the ratio scales with how sparse the writes are
#: relative to the arena, so its absolute value is huge and
#: machine-sensitive — a ±25% band around a committed value would flake,
#: while the acceptance bar ("O(dirty) beats O(N) clearly") is stable.
SNAPSHOT_MIN_SPEEDUP = 5.0


# ---------------------------------------------------------------------------
# Gate workloads.
#
# Each maker builds the device and buffers once and returns a
# ``run(fastpath)`` closure that only launches — so a measurement times the
# interpreter, not the setup.  The kernels drive the raw event ISA with
# loop-invariant index tuples hoisted, keeping kernel-side Python cost (paid
# identically by both engines) from diluting the engine comparison.


def make_streaming():
    """Vector triad over 4 blocks x 128 threads: pure event-loop speed."""
    dev = Device(nvidia_a100())
    n = 4 * 128 * 16
    x = dev.from_array("x", np.arange(n, dtype=np.float64))
    y = dev.from_array("y", np.zeros(n))
    fma = intern_compute("fma")

    def k(tc, x, y):
        i = tc.global_tid
        step = tc.block_dim * tc.num_blocks
        while i < n:
            ii = (i,)
            v = (yield Load(x, ii))[0]
            yield fma
            yield Store(y, ii, (2.0 * v,))
            i += step

    def run(fastpath):
        t0 = time.perf_counter()
        kc = dev.launch(k, 4, 128, args=(x, y), fastpath=fastpath)
        dt = time.perf_counter() - t0
        assert np.array_equal(y.to_numpy(), 2.0 * np.arange(n))
        return kc, dt

    return run


def make_generic_simd():
    """Generic-mode SIMD shape: worksharing regions over warp-level SIMD.

    Models the paper's generic execution mode at the event level: each
    parallel-region activation is a block barrier (the state-machine round
    trip), the region stages arguments through the shared-memory sharing
    space behind a ``syncwarp``, and the SIMD body distributes a 4-element
    worksharing chunk per lane with divergent compute and a shuffle step
    per element, closing with a region-exit ``syncwarp`` and a leader-lane
    atomic.
    """
    dev = Device(nvidia_a100())
    n = 2 * 128 * 8
    x = dev.from_array("x", np.arange(n, dtype=np.float64))
    out = dev.from_array("out", np.zeros(n))
    acc = dev.alloc("acc", 2, np.int64)
    cells = {}
    bar = intern_syncblock()
    fma2 = intern_compute("fma", 2)
    alu = intern_compute("alu")

    def k(tc, x, out, acc):
        if tc.tid == 0:
            cells[tc.block_id] = tc.shared_alloc("share", tc.block_dim, np.float64)
        yield bar
        sh = cells[tc.block_id]
        wm = tc.warp_mask()
        sw = intern_syncwarp(wm)
        base = tc.warp_id * tc.warp_size
        my = (tc.tid,)
        nb = (base + (tc.lane_id + 1) % tc.warp_size,)
        op = fma2 if tc.lane_id % 2 == 0 else alu
        lane0 = tc.lane_id == 0
        i = tc.global_tid
        step = tc.block_dim * tc.num_blocks
        while i < n:
            yield bar  # parallel-region activation (state-machine round)
            ii = (i,)
            v = (yield Load(x, ii))[0]
            yield Store(sh, my, (v,))  # stage args in the sharing space
            yield sw  # SIMD region entry
            u = (yield Load(sh, nb))[0]
            for _ in range(4):  # 4-element worksharing chunk per region
                v = (yield Load(x, ii))[0]
                yield op
                s = yield Shuffle("down", v, 16, wm)
                v += 0.0 if s is None else s
                yield Store(out, ii, (v + u,))
                i += step
                ii = (i,)
            yield sw  # SIMD region exit
            if lane0:
                yield AtomicOp(acc, 0, "add", 1)

    def run(fastpath):
        t0 = time.perf_counter()
        kc = dev.launch(k, 2, 128, args=(x, out, acc), fastpath=fastpath)
        dt = time.perf_counter() - t0
        return kc, dt

    return run


WORKLOADS = {
    "streaming": make_streaming,
    "generic_simd": make_generic_simd,
}


# ---------------------------------------------------------------------------
# JIT gate workloads.
#
# These are the shapes the trace-compiling tier exists for: convergent
# grid-stride loops over global memory.  They use the portable ``tc``
# API (not raw events) because the same kernel body must drive both the
# scalar ThreadCtx and the JIT's vectorized VecThreadCtx.  Each maker
# returns a ``run(engine)`` closure; measurements interleave
# ``engine="jit"`` against ``engine="instrumented"``.


def make_jit_streaming():
    """Coalesced float32 triad, 4 blocks x 128 threads, grid-stride."""
    dev = Device(nvidia_a100())
    n = 32768
    x = dev.from_array("x", np.arange(n, dtype=np.float32))
    y = dev.alloc("y", n, np.float32)
    expect = np.arange(n, dtype=np.float32) * np.float32(2.0) + np.float32(1.0)

    def k(tc, x, y, n):
        i = tc.global_tid
        step = tc.block_dim * tc.num_blocks
        while i < n:
            v = yield from tc.load(x, i)
            yield from tc.compute("fma", 1)
            yield from tc.store(y, i, v * 2.0 + 1.0)
            i += step

    def run(engine):
        t0 = time.perf_counter()
        kc = dev.launch(k, 4, 128, args=(x, y, n), engine=engine)
        dt = time.perf_counter() - t0
        assert np.array_equal(y.to_numpy(), expect)
        return kc, dt

    return run


def make_jit_stencil():
    """3-point float32 stencil with a halo: three overlapping coalesced
    loads per iteration exercise the L1 sector cache under the JIT's
    precomputed footprints."""
    dev = Device(nvidia_a100())
    n = 32768
    x = dev.from_array("x", np.linspace(0.0, 1.0, n + 2, dtype=np.float32))
    out = dev.alloc("out", n, np.float32)
    xs = x.to_numpy()
    # Same expression as the kernel: NEP-50 keeps float32 through the
    # python-float coefficients, so this is bit-exact against any engine.
    expect = 0.25 * xs[:n] + 0.5 * xs[1 : n + 1] + 0.25 * xs[2 : n + 2]

    def k(tc, x, out, n):
        i = tc.global_tid
        step = tc.block_dim * tc.num_blocks
        while i < n:
            a = yield from tc.load(x, i)
            b = yield from tc.load(x, i + 1)
            c = yield from tc.load(x, i + 2)
            yield from tc.compute("fma", 4)
            yield from tc.store(out, i, 0.25 * a + 0.5 * b + 0.25 * c)
            i += step

    def run(engine):
        t0 = time.perf_counter()
        kc = dev.launch(k, 4, 128, args=(x, out, n), engine=engine)
        dt = time.perf_counter() - t0
        assert np.array_equal(out.to_numpy(), expect)
        return kc, dt

    return run


JIT_WORKLOADS = {
    "jit_streaming": make_jit_streaming,
    "jit_stencil": make_jit_stencil,
}


# ---------------------------------------------------------------------------
# Snapshot gate workload.
#
# The retry-ladder / serve-clone shape: a large device arena, a loop of
# sparse kernel writes, and a snapshot + rollback per attempt.  The full
# leg rebuilds an un-chained ``MemorySnapshot`` every iteration — the
# pre-refactor cost model, O(arena) copy + checksum per attempt — while
# the incremental leg chains ``base=`` snapshots exactly as
# ``Device.launch``'s retry loop and the serve tier do, paying O(dirty
# pages) per attempt.  Both legs restore to the identical pre-loop state
# (asserted bit-exact), so the ratio compares equal work.


def measure_snapshot_speedup(reps: int = DEFAULT_REPS) -> dict:
    from repro.faults.scrub import MemorySnapshot
    from repro.gpu.memory import PAGE_SHIFT, GlobalMemory

    n = 1 << 20  # 8 MiB arena: 4096 pages of 256 float64 elements
    iters = 16
    # Sparse write pattern: a fixed stride walk dirties a handful of
    # pages per attempt, the regime snapshots exist for.
    idx = (np.arange(32, dtype=np.int64) * 12007) % n
    dirty_per_iter = len(np.unique(idx >> PAGE_SHIFT))

    gmem = GlobalMemory()
    buf = gmem.from_array("state", np.zeros(n))
    baseline_state = buf.to_numpy()
    pages_total = buf.npages

    def run_full():
        t0 = time.perf_counter()
        for it in range(iters):
            snap = MemorySnapshot(gmem)
            buf.scatter(idx, np.full(idx.size, float(it + 1)))
            snap.restore()
        return time.perf_counter() - t0

    def run_incremental():
        snap = MemorySnapshot(gmem)  # seed paid once, like the retry loop
        t0 = time.perf_counter()
        for it in range(iters):
            buf.scatter(idx, np.full(idx.size, float(it + 1)))
            snap.restore()
            snap = MemorySnapshot(gmem, base=snap)
        return time.perf_counter() - t0

    best_full = best_incr = float("inf")
    for _ in range(reps):
        best_full = min(best_full, run_full())
        assert np.array_equal(buf.to_numpy(), baseline_state)
        best_incr = min(best_incr, run_incremental())
        assert np.array_equal(buf.to_numpy(), baseline_state)
    return {
        "pages_total": int(pages_total),
        "dirty_pages_per_iter": int(dirty_per_iter),
        "iters": int(iters),
        "full_s_per_iter": best_full / iters,
        "incr_s_per_iter": best_incr / iters,
        "snapshot_speedup": best_full / best_incr,
    }


def measure_speedup(name: str, reps: int = DEFAULT_REPS) -> dict:
    """Interleaved fast/instrumented measurement of one gate workload.

    Runs ``reps`` pairs alternating engine per launch (so slow drift in
    machine load hits both legs equally), scores each leg best-of, and
    asserts the two engines produced bit-identical counters.
    """
    run = WORKLOADS[name]()
    best_fast = best_instr = float("inf")
    kc_fast = kc_instr = None
    for _ in range(reps):
        kc, dt = run(None)  # auto-selects the fast engine (no hooks)
        if dt < best_fast:
            best_fast, kc_fast = dt, kc
        kc, dt = run(False)  # force the instrumented engine
        if dt < best_instr:
            best_instr, kc_instr = dt, kc
    assert kc_fast.identical(kc_instr), (
        f"{name}: fast/instrumented counters diverged — speedup is void"
    )
    steps = kc_fast.total("lane_steps")
    return {
        "lane_steps": int(steps),
        "rounds": int(kc_fast.rounds),
        "cycles": float(kc_fast.cycles),
        "fast_steps_per_s": steps / best_fast,
        "instr_steps_per_s": steps / best_instr,
        "speedup": best_instr / best_fast,
    }


def _strip_jit_extras(kc):
    """Remove the JIT telemetry keys so ``identical()`` compares only the
    architectural counters (mirrors the differential suite's helper)."""
    kc.extra.pop("engine", None)
    for key in [k for k in kc.extra if k.startswith("jit_")]:
        del kc.extra[key]
    return kc


def measure_jit_speedup(name: str, reps: int = DEFAULT_REPS) -> dict:
    """Interleaved jit/instrumented measurement of one JIT gate workload.

    Same protocol as :func:`measure_speedup`; additionally requires that
    every warp actually compiled (a silently deoptimizing workload would
    make the ratio meaningless) and that the counters — after stripping
    the telemetry keys — are bit-identical.
    """
    run = JIT_WORKLOADS[name]()
    best_jit = best_instr = float("inf")
    kc_jit = kc_instr = None
    for _ in range(reps):
        kc, dt = run("jit")
        if dt < best_jit:
            best_jit, kc_jit = dt, kc
        kc, dt = run("instrumented")
        if dt < best_instr:
            best_instr, kc_instr = dt, kc
    warps = kc_jit.extra.get("jit_warps_compiled", 0.0)
    deopts = {k: v for k, v in kc_jit.extra.items() if k.startswith("jit_deopt_")}
    assert warps > 0 and not deopts, (
        f"{name}: gate workload did not stay compiled "
        f"(warps={warps}, deopts={deopts}) — speedup is void"
    )
    assert _strip_jit_extras(kc_jit).identical(kc_instr), (
        f"{name}: jit/instrumented counters diverged — speedup is void"
    )
    steps = kc_jit.total("lane_steps")
    return {
        "lane_steps": int(steps),
        "rounds": int(kc_jit.rounds),
        "cycles": float(kc_jit.cycles),
        "jit_steps_per_s": steps / best_jit,
        "instr_steps_per_s": steps / best_instr,
        "jit_speedup": best_instr / best_jit,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark legs


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_streaming(benchmark):
    """Streaming triad under the fast round engine."""
    run = make_streaming()

    kc, _ = benchmark(run, None)
    benchmark.extra_info["rounds"] = kc.rounds
    benchmark.extra_info["cycles"] = kc.cycles
    benchmark.extra_info["lane_steps"] = kc.total("lane_steps")


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_streaming_instrumented(benchmark):
    """Streaming triad forced onto the instrumented engine (reference leg)."""
    run = make_streaming()

    kc, _ = benchmark(run, False)
    benchmark.extra_info["rounds"] = kc.rounds
    benchmark.extra_info["lane_steps"] = kc.total("lane_steps")


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_generic_simd(benchmark):
    """Generic-mode SIMD workload under the fast round engine."""
    run = make_generic_simd()

    kc, _ = benchmark(run, None)
    benchmark.extra_info["rounds"] = kc.rounds
    benchmark.extra_info["lane_steps"] = kc.total("lane_steps")


def test_fastpath_speedup_gate():
    """Both engines agree bit-exactly and the fast engine is faster.

    A light version (few reps) for plain pytest runs; the CI ``perf-smoke``
    job runs the full standalone measurement and compares the speedup
    against the committed baseline with ±25% tolerance instead of a hard
    threshold, so a loaded CI host cannot flake the suite.
    """
    for name in WORKLOADS:
        r = measure_speedup(name, reps=3)
        assert r["speedup"] > 1.0, f"{name}: fast engine slower than instrumented"


def test_jit_speedup_gate():
    """The JIT gate workloads compile fully, agree bit-exactly, and beat
    the fast interpreter's typical ratio.

    The light pytest leg keeps a generous floor (the fast engine's ~2x)
    so loaded hosts cannot flake it; the hard ``>= 10x`` acceptance floor
    lives in the CI ``perf-smoke`` ``--check`` run, measured best-of-N
    interleaved.
    """
    for name in JIT_WORKLOADS:
        r = measure_jit_speedup(name, reps=3)
        assert r["jit_speedup"] > 3.0, (
            f"{name}: jit speedup {r['jit_speedup']:.2f}x is not clearly "
            "ahead of the interpreters"
        )


def test_snapshot_speedup_gate():
    """Incremental (chained) snapshots clearly beat full-copy snapshots
    on a sparse-write rollback loop, and both restore bit-exactly.

    The light pytest leg keeps a generous floor; the hard ``>= 5x``
    acceptance floor lives in the CI ``perf-smoke`` ``--check`` run.
    """
    r = measure_snapshot_speedup(reps=2)
    assert r["snapshot_speedup"] > 2.0, (
        f"snapshot_rollback: incremental snapshots only "
        f"{r['snapshot_speedup']:.2f}x over full copies"
    )


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_streaming_jit(benchmark):
    """Streaming triad under the trace-compiling JIT tier."""
    run = make_jit_streaming()

    kc, _ = benchmark(run, "jit")
    benchmark.extra_info["rounds"] = kc.rounds
    benchmark.extra_info["lane_steps"] = kc.total("lane_steps")
    benchmark.extra_info["jit_warps_compiled"] = kc.extra["jit_warps_compiled"]


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_barrier_heavy(benchmark):
    """Alternating compute/barrier: stresses the barrier completion path."""
    dev = Device(nvidia_a100())
    bar = intern_syncblock()
    alu = intern_compute("alu")

    def k(tc):
        for _ in range(64):
            yield alu
            yield bar

    kc = benchmark(dev.launch, k, 2, 256)
    assert kc.syncblocks == 2 * 64
    benchmark.extra_info["sync_cycles"] = kc.sync_cycles


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_atomic_contention(benchmark):
    """All lanes hammer one address: atomic serialization path."""
    dev = Device(nvidia_a100())
    acc = dev.alloc("acc", 1, np.int64)

    def k(tc, acc):
        for _ in range(16):
            yield from tc.atomic_add(acc, 0, 1)

    def run():
        acc.data[0] = 0  # the accumulator carries across benchmark rounds
        kc = dev.launch(k, 2, 128, args=(acc,))
        assert acc.read(0) == 2 * 128 * 16
        return kc

    kc = benchmark(run)
    benchmark.extra_info["atomic_conflicts"] = kc.total("atomic_conflicts")


@pytest.mark.benchmark(group="substrate")
def test_scheduler_throughput_parallel_engine(benchmark):
    """The streaming triad again, sharded over the parallel launch engine.

    Tracks the engine's overhead/speedup against the serial leg above;
    the cycle outputs must be identical (the engine may only change
    wall-clock, never results).  Worker processes inherit the per-block
    fast/instrumented engine selection.
    """
    from repro.exec import ParallelExecutor
    from repro.exec.pool import fork_available

    dev = Device(
        nvidia_a100(),
        executor=ParallelExecutor(processes=fork_available()),
    )
    n = 4 * 128 * 8
    x = dev.from_array("x", np.arange(n, dtype=np.float64))
    y = dev.from_array("y", np.zeros(n))
    fma = intern_compute("fma")

    def k(tc, x, y):
        i = tc.global_tid
        step = tc.block_dim * tc.num_blocks
        while i < n:
            ii = (i,)
            v = (yield Load(x, ii))[0]
            yield fma
            yield Store(y, ii, (2.0 * v,))
            i += step

    def run():
        kc = dev.launch(k, 4, 128, args=(x, y))
        assert np.array_equal(y.to_numpy(), 2.0 * np.arange(n))
        return kc

    kc = benchmark(run)
    benchmark.extra_info["rounds"] = kc.rounds
    benchmark.extra_info["cycles"] = kc.cycles


@pytest.mark.benchmark(group="substrate")
def test_coalescing_cost_calibration(benchmark):
    """Record the modelled cost ratio of scattered vs coalesced access."""
    # One SM holding 8 warps: throughput terms decide, as on a loaded
    # device — a lone block would hide the difference under latency.
    n = 32 * 16 * 8
    setups = {}
    for label, stride in (("coalesced", 1), ("scattered", 16)):
        dev = Device(nvidia_a100().with_overrides(num_sms=1))
        x = dev.from_array("x", np.zeros(n))

        def k(tc, x, stride=stride):
            for r in range(8):
                idx = ((r * 32 + tc.block_id * 8 + tc.lane_id) * stride) % n
                yield from tc.load(x, idx)

        setups[label] = (dev, k, x)

    def run():
        return {
            label: dev.launch(k, 8, 32, args=(x,)).cycles
            for label, (dev, k, x) in setups.items()
        }

    out = benchmark(run)
    ratio = out["scattered"] / out["coalesced"]
    benchmark.extra_info["scatter_penalty"] = round(ratio, 2)
    assert ratio > 1.0


# ---------------------------------------------------------------------------
# Standalone entry point (CI perf-smoke leg)


def run_measurements(reps: int, only=None) -> dict:
    from repro.jit import snapshot as jit_snapshot

    def wanted(name):
        return only is None or name in only

    results = {}
    for name in WORKLOADS:
        if not wanted(name):
            continue
        r = measure_speedup(name, reps=reps)
        results[name] = r
        print(
            f"BENCH substrate {name}: fast {r['fast_steps_per_s'] / 1e3:.1f}k "
            f"steps/s  instr {r['instr_steps_per_s'] / 1e3:.1f}k steps/s  "
            f"speedup {r['speedup']:.2f}x  (rounds={r['rounds']}, "
            f"cycles={r['cycles']:.0f})"
        )
    for name in JIT_WORKLOADS:
        if not wanted(name):
            continue
        r = measure_jit_speedup(name, reps=reps)
        results[name] = r
        print(
            f"BENCH substrate {name}: jit {r['jit_steps_per_s'] / 1e3:.1f}k "
            f"steps/s  instr {r['instr_steps_per_s'] / 1e3:.1f}k steps/s  "
            f"speedup {r['jit_speedup']:.2f}x  (gate >= "
            f"{JIT_MIN_SPEEDUP:.0f}x, rounds={r['rounds']}, "
            f"cycles={r['cycles']:.0f})"
        )
    if wanted("snapshot_rollback"):
        r = measure_snapshot_speedup(reps=reps)
        results["snapshot_rollback"] = r
        print(
            f"BENCH substrate snapshot_rollback: full "
            f"{r['full_s_per_iter'] * 1e3:.2f}ms/iter  incremental "
            f"{r['incr_s_per_iter'] * 1e3:.2f}ms/iter  speedup "
            f"{r['snapshot_speedup']:.1f}x  (gate >= "
            f"{SNAPSHOT_MIN_SPEEDUP:.0f}x, {r['dirty_pages_per_iter']}/"
            f"{r['pages_total']} pages dirty per iter)"
        )
    return {
        "schema": 1,
        "metric": "lane_steps_per_second",
        "tolerance_pct": TOLERANCE_PCT,
        "jit_min_speedup": JIT_MIN_SPEEDUP,
        "snapshot_min_speedup": SNAPSHOT_MIN_SPEEDUP,
        # Advisory process-global JIT totals for this bench run (trace
        # cache temperature, deopt tallies); recorded, never gated.
        "jit_stats": jit_snapshot(),
        "workloads": results,
    }


def check_against_baseline(measured: dict, baseline_path: str,
                           only=None) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    rc = 0
    tol = baseline.get("tolerance_pct", TOLERANCE_PCT) / 100.0
    jit_min = baseline.get("jit_min_speedup", JIT_MIN_SPEEDUP)
    snap_min = baseline.get("snapshot_min_speedup", SNAPSHOT_MIN_SPEEDUP)
    for name, base in baseline["workloads"].items():
        if only is not None and name not in only:
            continue
        got = measured["workloads"].get(name)
        if got is None:
            print(f"BENCH substrate FAIL: workload {name!r} missing")
            rc = 1
            continue
        if "snapshot_speedup" in base:
            # Floor-only gate: the absolute ratio is sparsity- and
            # machine-dependent, so no baseline-relative band.
            ratio_key, lo = "snapshot_speedup", snap_min
        elif "jit_speedup" in base:
            ratio_key = "jit_speedup"
            # The JIT tier's acceptance bar is absolute: >= 10x whatever
            # the committed baseline drifted to.
            lo = max(base[ratio_key] * (1.0 - tol), jit_min)
        else:
            ratio_key = "speedup"
            lo = base[ratio_key] * (1.0 - tol)
        if got[ratio_key] < lo:
            print(
                f"BENCH substrate FAIL: {name} {ratio_key} "
                f"{got[ratio_key]:.2f}x below {lo:.2f}x (baseline "
                f"{base[ratio_key]:.2f}x -{int(tol * 100)}%)"
            )
            rc = 1
        else:
            print(
                f"BENCH substrate OK: {name} {ratio_key} {got[ratio_key]:.2f}x "
                f"(baseline {base[ratio_key]:.2f}x, floor {lo:.2f}x)"
            )
        # Simulation outputs are deterministic and must never drift at all.
        for field in ("lane_steps", "rounds", "cycles",
                      "pages_total", "dirty_pages_per_iter", "iters"):
            if field in base and got[field] != base[field]:
                print(
                    f"BENCH substrate FAIL: {name} {field} changed "
                    f"{base[field]} -> {got[field]} (update the baseline "
                    "deliberately if intended)"
                )
                rc = 1
    return rc


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reps", type=int, default=DEFAULT_REPS,
                    help="interleaved measurement pairs per workload")
    ap.add_argument("--json", metavar="PATH",
                    help="write measured results to PATH")
    ap.add_argument("--check", action="store_true",
                    help=f"compare speedups against {BASELINE_PATH}")
    ap.add_argument("--write-baseline", action="store_true",
                    help=f"rewrite {BASELINE_PATH} from this run")
    ap.add_argument("--only", action="append", metavar="WORKLOAD",
                    help="measure (and check) only the named workload; "
                    "repeatable")
    args = ap.parse_args(argv)

    measured = run_measurements(args.reps, only=args.only)
    if args.json:
        with open(args.json, "w") as f:
            json.dump(measured, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.write_baseline:
        with open(BASELINE_PATH, "w") as f:
            json.dump(measured, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"BENCH substrate baseline written to {BASELINE_PATH}")
    if args.check:
        return check_against_baseline(measured, BASELINE_PATH,
                                      only=args.only)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
