"""Ablation benches for the design choices DESIGN.md calls out.

A1  sharing-space size (§5.3.1: 1,024 → 2,048 bytes)
A2  if/cascade dispatch vs indirect calls (§5.5)
A3  the extra team-main warp of generic teams mode (§5.1, Fig 2)
A4  the AMD profile's generic-SIMD demotion (§5.4.1)
A5  reduction extension vs atomic updates (§6.2 / §7 future work)
A6  schedule(dynamic) claims vs static-cyclic worksharing (extension)
A9  sanitizer off-path guard (repro.sanitizer monitor hooks)
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.core import api as omp
from repro.gpu.costmodel import amd_mi100, benchmark_profile
from repro.gpu.device import Device
from repro.kernels import ideal, laplace3d, sparse_matvec
from repro.perf.report import ascii_bars
from repro.runtime.icv import ExecMode


@pytest.mark.benchmark(group="ablation")
def test_sharing_space_size(benchmark):
    """A1: small sharing spaces overflow to global memory (more fallbacks)."""

    def run():
        out = {}
        for size in (256, 512, 1024, 2048, 4096):
            dev = Device(benchmark_profile())
            data = sparse_matvec.build_data(dev, n_rows=256, n_cols=256)
            r = sparse_matvec.run_simd(
                dev, data, simd_len=2, num_teams=16, team_size=256,
                sharing_bytes=size,
            )
            assert data.check()
            out[size] = (r.cycles, r.runtime.sharing_fallbacks)
        return out

    out = run_once(benchmark, run)
    print("\nA1 — sharing space size (sparse_matvec, simd_len=2, 128 groups):")
    print("  bytes   cycles   global fallbacks")
    for size, (cycles, fb) in out.items():
        print(f"  {size:>5}  {cycles:8.0f}   {fb}")
    print(ascii_bars({s: c for s, (c, _) in out.items()}, unit=" cycles"))
    # With 128 groups, payload slots (7) fit only once the per-group slice
    # has >= 7 slots: 128*7*8 = 7,168 B.  Every tested size overflows, but
    # larger spaces should never be slower and fallbacks never increase.
    sizes = sorted(out)
    fallbacks = [out[s][1] for s in sizes]
    assert fallbacks == sorted(fallbacks, reverse=True)
    # The paper's choice (2,048) must not lose to the legacy 1,024.
    assert out[2048][0] <= out[1024][0] * 1.01


@pytest.mark.benchmark(group="ablation")
def test_dispatch_cascade(benchmark):
    """A2: known tasks dispatch through the cascade; external ones pay the
    serializing indirect-call penalty on every loop-task invocation.

    Uses a compute-light kernel over an L1-resident vector so the dispatch
    cost lands on the critical path instead of hiding under DRAM time (in
    memory-bound kernels the penalty is negligible — that is itself a
    result worth noting, and why the if/cascade matters most for small hot
    loop bodies)."""

    import numpy as np

    TRIP = 64
    ROWS = 512

    def body(tc, ivs, view):
        i, j = ivs
        v = yield from tc.load(view["x"], j)
        yield from tc.compute("fma", 1)
        yield from tc.store(view["y"], (i * TRIP + j) % TRIP, 2.0 * v)

    def build(external):
        inner = omp.simd(
            omp.loop(TRIP, body=body, uses=("x", "y"), name="a2.elements"),
            external=external,
        )
        return omp.target(
            omp.teams_distribute_parallel_for(
                omp.loop(ROWS, nested=inner, uses=(), name="a2.rows")
            )
        )

    def run():
        out = {}
        for label, external in (("cascade", False), ("indirect", True)):
            dev = Device(benchmark_profile())
            x = dev.from_array("x", np.arange(TRIP, dtype=np.float64))
            y = dev.from_array("y", np.zeros(TRIP))
            args = {"x": x, "y": y}
            kernel = omp.compile(build(external), tuple(args), name=f"a2.{label}")
            r = omp.launch(dev, kernel, num_teams=8, team_size=64,
                           simd_len=8, args=args)
            out[label] = (r.cycles, r.counters.rounds)
        return out

    out = run_once(benchmark, run)
    print(
        "\nA2 — dispatch: "
        + ", ".join(f"{k}={c:.0f} cycles ({rd} rounds)" for k, (c, rd) in out.items())
    )
    assert out["indirect"][1] > out["cascade"][1], "indirect must add rounds"
    assert out["indirect"][0] > out["cascade"][0] * 1.10, (
        "indirect calls must cost measurably more on a hot small loop"
    )


@pytest.mark.benchmark(group="ablation")
def test_extra_main_warp(benchmark):
    """A3: forcing generic teams mode adds the extra main warp and the team
    state machine to an otherwise SPMD kernel."""

    def run():
        out = {}
        for label, mode in (("spmd", ExecMode.AUTO), ("generic", ExecMode.GENERIC)):
            dev = Device(benchmark_profile())
            data = laplace3d.build_data(dev)
            prog = laplace3d.program_no_simd(data.nx, data.ny, data.nz)
            prog.teams_mode = mode
            args = {"x": data.x, "y": data.y}
            kernel = omp.compile(prog, tuple(args), name=f"a3.{label}")
            data.reset()
            r = omp.launch(dev, kernel, num_teams=16, team_size=128,
                           simd_len=1, args=args)
            assert data.check()
            out[label] = (r.cycles, r.cfg.block_dim)
        return out

    out = run_once(benchmark, run)
    print(
        "\nA3 — teams mode: "
        + ", ".join(f"{k}={c:.0f} cycles (block_dim {bd})" for k, (c, bd) in out.items())
    )
    assert out["generic"][1] == out["spmd"][1] + 32, "extra warp must be added"
    assert out["generic"][0] > out["spmd"][0], "generic teams mode must cost more"


@pytest.mark.benchmark(group="ablation")
def test_amd_fallback(benchmark):
    """A4: on the AMD profile generic-mode SIMD demotes to sequential simd
    loops (§5.4.1), while SPMD-mode simd still works."""

    def run():
        out = {}
        for label, params in (("nvidia", benchmark_profile()), ("amd", amd_mi100())):
            dev = Device(params)
            data = laplace3d.build_data(dev)
            r = laplace3d.run(dev, data, "generic_simd", simd_len=32,
                              num_teams=8, team_size=128)
            assert data.check()
            out[label] = (r.cycles, r.cfg.simd_len, r.cfg.simd_demoted,
                          r.runtime.simd_sequential)
        return out

    out = run_once(benchmark, run)
    print("\nA4 — AMD demotion:")
    for k, (c, g, demoted, seq) in out.items():
        print(f"  {k}: cycles={c:.0f} effective simd_len={g} demoted={demoted} "
              f"sequential simd regions={seq}")
    assert not out["nvidia"][2] and out["nvidia"][1] == 32
    assert out["amd"][2] and out["amd"][1] == 1, "AMD must demote generic simd"
    assert out["amd"][3] > 0, "AMD simd loops must run sequentially"


@pytest.mark.benchmark(group="ablation")
def test_dynamic_vs_static_schedule(benchmark):
    """A6: schedule(dynamic) row claims vs static-cyclic on a skewed matrix.

    Measures the extension's tradeoff: dynamic claiming load-balances the
    skewed rows but pays one exposed-latency atomic per chunk.  At these
    skews the claims cost ~10 % more than the imbalance they remove —
    matching GPU practice, where static schedules usually win unless the
    imbalance is extreme relative to the loop body."""

    def run():
        dev = Device(benchmark_profile())
        data = sparse_matvec.build_data(dev, n_rows=256, n_cols=256,
                                        mean_nnz=10, skew=1.6)
        static = sparse_matvec.run_simd(dev, data, simd_len=8, num_teams=8,
                                        team_size=64)
        assert data.check()
        dynamic = sparse_matvec.run_simd_dynamic(dev, data, simd_len=8,
                                                 num_teams=8, team_size=64)
        assert data.check()
        return {
            "static": static.cycles,
            "dynamic": dynamic.cycles,
            "claims": dynamic.counters.atomics - static.counters.atomics,
        }

    out = run_once(benchmark, run)
    ratio = out["dynamic"] / out["static"]
    print(f"\nA6 — schedule: static={out['static']:.0f}, "
          f"dynamic={out['dynamic']:.0f} ({ratio:.2f}x; "
          f"{out['claims']:.0f} claim atomics)")
    assert out["claims"] > 0, "dynamic must claim through atomics"
    assert 0.8 < ratio < 1.5, "claim overhead should be moderate, not runaway"


@pytest.mark.benchmark(group="ablation")
def test_sanitizer_off_is_free(benchmark):
    """A9: the sanitizer's monitor hooks are zero-cost when disabled.

    Guards the repro.sanitizer integration: an unsanitized launch must
    produce bit-identical cycle estimates to a sanitized one (the monitor
    observes, it never perturbs cost accounting), and the off-path must
    not pay for the instrumentation in wall time — it does strictly less
    Python work than report mode, so it must not come out slower."""

    import time

    import numpy as np

    def make_workload():
        dev = Device(benchmark_profile())
        x = dev.from_array("x", np.arange(8192, dtype=np.float64))
        y = dev.from_array("y", np.zeros(8192))

        def kernel(tc, x, y):
            i = tc.global_tid
            v = yield from tc.load(x, i)
            yield from tc.compute("fma")
            yield from tc.syncthreads()
            yield from tc.store(y, i, 2.0 * v)

        return dev, kernel, (x, y)

    def timed_launch(sanitize, repeats=5):
        best = float("inf")
        kc = None
        for _ in range(repeats):
            dev, kernel, args = make_workload()
            t0 = time.perf_counter()
            kc = dev.launch(kernel, num_blocks=64, threads_per_block=128,
                            args=args, sanitize=sanitize)
            best = min(best, time.perf_counter() - t0)
        return kc, best

    def run():
        kc_off, wall_off = timed_launch(None)
        kc_rep, wall_rep = timed_launch("report")
        return {"off": (kc_off, wall_off), "report": (kc_rep, wall_rep)}

    out = run_once(benchmark, run)
    kc_off, wall_off = out["off"]
    kc_rep, wall_rep = out["report"]
    print(f"\nA9 — sanitizer guard: off={wall_off * 1e3:.1f} ms, "
          f"report={wall_rep * 1e3:.1f} ms "
          f"({wall_rep / wall_off:.2f}x); cycles identical="
          f"{kc_off.cycles == kc_rep.cycles}")
    assert kc_off.sanitizer is None, "off-path must not build a monitor"
    assert kc_rep.sanitizer is not None and kc_rep.sanitizer.clean
    assert kc_off.cycles == kc_rep.cycles, (
        "sanitizing must not change the cycle estimate"
    )
    # Generous noise margin: the off-path must never regress past the
    # fully instrumented path.
    assert wall_off <= wall_rep * 1.10, (
        f"sanitize=off ({wall_off:.4f}s) slower than report mode "
        f"({wall_rep:.4f}s): the disabled hooks are not free"
    )


@pytest.mark.benchmark(group="ablation")
def test_reduction_vs_atomic(benchmark):
    """A5: the §7 reduction extension vs the paper's atomic-update fallback."""

    def run():
        dev = Device(benchmark_profile())
        data = sparse_matvec.build_data(dev, n_rows=256, n_cols=256)
        atomic = sparse_matvec.run_simd(dev, data, simd_len=8, num_teams=16,
                                        team_size=128)
        assert data.check()
        red = sparse_matvec.run_simd_reduction(dev, data, simd_len=8,
                                               num_teams=16, team_size=128)
        assert data.check()
        return {"atomic": atomic.cycles, "reduction": red.cycles}

    out = run_once(benchmark, run)
    ratio = out["atomic"] / out["reduction"]
    print(f"\nA5 — reduction vs atomic: atomic={out['atomic']:.0f}, "
          f"reduction={out['reduction']:.0f} ({ratio:.2f}x faster)")
    assert out["reduction"] < out["atomic"], (
        "the reduction extension should beat atomic updates"
    )
