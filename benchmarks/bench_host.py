"""Host-side benches: data residency (A7) and target-task overlap (A8).

These quantify the host-layer substrates the paper's §3 background assumes:
structured ``target data`` regions amortizing transfers, and ``nowait``
target tasks overlapping on helper streams (Tian et al. [26] in the
paper's related work).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once
from repro.core import api as omp
from repro.gpu.costmodel import benchmark_profile
from repro.gpu.device import Device
from repro.host import target_data
from repro.host.tasks import TaskQueue


def scale_kernel(n):
    def body(tc, ivs, view):
        (i,) = ivs
        v = yield from tc.load(view["buf"], i)
        yield from tc.compute("fma")
        yield from tc.store(view["buf"], i, 2.0 * v)

    return omp.compile(
        omp.target(omp.teams_distribute_parallel_for(n, body=body)),
        ("buf",),
        name="scale",
    )


@pytest.mark.benchmark(group="host")
def test_data_residency(benchmark):
    """A7: per-launch mapping vs one resident region across 8 launches."""
    N, ITERS = 4096, 8

    def run():
        kernel = scale_kernel(N)
        host = np.ones(N)
        # Per-launch mapping.
        dev = Device(benchmark_profile())
        naive = 0.0
        a = host.copy()
        for _ in range(ITERS):
            with target_data(dev, buf=(a, "tofrom")) as region:
                omp.launch(dev, kernel, num_teams=8, team_size=128,
                           args=region.buffers)
            naive += region.counters.transfer_us
        # Resident region.
        dev = Device(benchmark_profile())
        b = host.copy()
        with target_data(dev, buf=(b, "tofrom")) as region:
            for _ in range(ITERS):
                omp.launch(dev, kernel, num_teams=8, team_size=128,
                           args=region.buffers)
        assert np.array_equal(a, b)
        return {"naive_us": naive, "resident_us": region.counters.transfer_us}

    out = run_once(benchmark, run)
    ratio = out["naive_us"] / out["resident_us"]
    print(f"\nA7 — residency: per-launch {out['naive_us']:.1f} us vs resident "
          f"{out['resident_us']:.1f} us ({ratio:.1f}x saved)")
    assert ratio > 4.0


@pytest.mark.benchmark(group="host")
def test_task_overlap(benchmark):
    """A8: nowait target tasks overlap independent kernels on streams."""
    N = 2048

    def run():
        dev = Device(benchmark_profile())
        kernel = scale_kernel(N)
        queue = TaskQueue(dev, num_streams=4)
        for i in range(8):
            buf = dev.from_array(f"b{i}", np.ones(N))
            queue.submit(kernel, {"buf": buf}, depend_out=(f"b{i}",),
                         num_teams=4, team_size=128)
        queue.taskwait()
        return {"makespan": queue.makespan_us, "serial": queue.serial_us}

    out = run_once(benchmark, run)
    overlap = out["serial"] / out["makespan"]
    print(f"\nA8 — task overlap: serial {out['serial']:.1f} us vs 4-stream "
          f"makespan {out['makespan']:.1f} us ({overlap:.2f}x)")
    assert overlap > 2.0
