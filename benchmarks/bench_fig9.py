"""Fig 9 reproduction: SIMD benefit on three kernels (§6.3).

Each bench regenerates one series of the paper's Fig 9 — speedup of the
three-level (simd) implementation over the two-level baseline across SIMD
group sizes {2, 4, 8, 16, 32} — verifies numerical correctness on every
launch, prints the series next to the paper's reference point, and asserts
the qualitative shape:

* sparse_matvec: large win (≳2.5×), optimum at an interior group size;
* SU3_bench: modest win everywhere, declining at group 32;
* benchmark kernel: big win that plateaus for large groups.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.perf.experiment import run_fig9
from repro.perf.report import fig9_table


@pytest.mark.benchmark(group="fig9")
def test_fig9_sparse_matvec(benchmark):
    result = run_once(benchmark, lambda: run_fig9("sparse_matvec"))
    print("\n" + fig9_table(result))
    benchmark.extra_info["speedups"] = {str(g): round(s, 3) for g, s in result.speedups.items()}
    # Shape assertions: who wins, roughly by how much, where the optimum is.
    assert result.max_speedup > 2.5, "expected a large three-level win (paper: 3.5x)"
    assert result.best_group in (4, 8, 16), "expected an interior optimum (paper: 8)"
    assert result.speedups[8] > result.speedups[2], "group 8 must beat group 2"
    assert result.speedups[8] > result.speedups[32], "group 8 must beat group 32"


@pytest.mark.benchmark(group="fig9")
def test_fig9_su3(benchmark):
    result = run_once(benchmark, lambda: run_fig9("su3_bench"))
    print("\n" + fig9_table(result))
    benchmark.extra_info["speedups"] = {str(g): round(s, 3) for g, s in result.speedups.items()}
    assert all(s > 1.0 for s in result.speedups.values()), "simd should win at every size"
    assert result.max_speedup < 3.0, "expected a modest win (paper: 1.3x)"
    assert result.speedups[result.best_group] > result.speedups[32] or result.best_group != 32, (
        "expected the optimum before group 32"
    )
    assert result.best_group != 32, "paper found small/mid groups best (4)"


@pytest.mark.benchmark(group="fig9")
def test_fig9_sparse_amd_demotion(benchmark):
    """§5.4.1's consequence for Fig 9: on the AMD profile, sparse_matvec's
    generic parallel region demotes simd to sequential — the whole group-
    size axis collapses to the same (group-1) execution, so the simd
    "speedup" series goes flat."""
    from repro.gpu.costmodel import amd_mi100
    from repro.gpu.device import Device
    from repro.kernels import sparse_matvec

    def run():
        cycles = {}
        demoted = {}
        for g in (2, 4, 8, 16, 32):
            dev = Device(amd_mi100())
            data = sparse_matvec.build_data(dev, n_rows=128, n_cols=128)
            r = sparse_matvec.run_simd(dev, data, simd_len=g, num_teams=8,
                                       team_size=128)
            assert data.check()
            cycles[g] = r.cycles
            demoted[g] = r.cfg.simd_demoted
        return cycles, demoted

    cycles, demoted = run_once(benchmark, run)
    print("\nFig 9 on AMD (sparse_matvec, generic parallel => demoted):")
    for g, c in cycles.items():
        print(f"  requested g={g:<3} -> effective 1, {c:,.0f} cycles")
    assert all(demoted.values()), "every group size must be demoted"
    spread = max(cycles.values()) / min(cycles.values())
    assert spread < 1.01, "demoted runs must be identical across group sizes"


@pytest.mark.benchmark(group="fig9")
def test_fig9_ideal(benchmark):
    result = run_once(benchmark, lambda: run_fig9("benchmark_kernel"))
    print("\n" + fig9_table(result))
    benchmark.extra_info["speedups"] = {str(g): round(s, 3) for g, s in result.speedups.items()}
    assert result.max_speedup > 1.8, "expected a clear win (paper: 2.15x)"
    # The paper's curve rises with group size and is flat at the top
    # (32 best, 16 "very close").
    assert result.speedups[32] > result.speedups[2]
    assert result.speedups[16] > 0.85 * result.speedups[32]
