"""Fig 10 reproduction: cost of the implementation (§6.4).

For each of the three kernels with three parallelizable loops, compare the
relative speedup of the "SPMD SIMD" and "Generic SIMD" builds against the
two-level "No SIMD" build (teams SPMD everywhere, SIMD group size 32):

* SPMD-SIMD should perform similarly to No-SIMD (low overhead);
* Generic-SIMD should pay roughly the paper's ~15 % state-machine and
  variable-sharing penalty.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.perf.experiment import run_fig10
from repro.perf.report import fig10_table


def _run(benchmark, kernel):
    result = run_once(benchmark, lambda: run_fig10(kernel))
    print("\n" + fig10_table(result))
    benchmark.extra_info["relative"] = {
        v: round(r, 4) for v, r in result.relative.items()
    }
    spmd = result.relative["spmd_simd"]
    generic = result.relative["generic_simd"]
    assert spmd > 0.85, f"SPMD-SIMD should be close to No-SIMD, got {spmd:.3f}x"
    assert 0.70 < generic < 1.0, (
        f"Generic-SIMD should pay a moderate penalty (~0.85x), got {generic:.3f}x"
    )
    assert generic < spmd, "generic mode must not beat SPMD mode"
    return result


@pytest.mark.benchmark(group="fig10")
def test_fig10_laplace3d(benchmark):
    _run(benchmark, "laplace3d")


@pytest.mark.benchmark(group="fig10")
def test_fig10_muram_transpose(benchmark):
    _run(benchmark, "muram_transpose")


@pytest.mark.benchmark(group="fig10")
def test_fig10_muram_interpol(benchmark):
    _run(benchmark, "muram_interpol")
