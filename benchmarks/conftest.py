"""Shared benchmark plumbing.

Each benchmark runs a full, deterministic simulation once per round (the
simulations are expensive and their *cycle* outputs are exact, so repeated
timing rounds only measure interpreter noise).  Figures are printed so a
``pytest benchmarks/ --benchmark-only`` run reproduces the paper's plots as
text.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
