"""Parallel launch engine: wall-clock speedup over the serial loop.

The simulator's cost model is deterministic, so the *only* thing the
block-sharding engine may change is how long the simulation takes on the
host.  This bench times one compute-heavy 64-block grid under the serial
executor and under 4 forked workers, verifies the results are
bit-identical, and records the speedup.

Run standalone (prints BENCH lines, used by the CI smoke leg)::

    PYTHONPATH=src python benchmarks/bench_exec.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_exec.py --benchmark-only

The ≥2× acceptance assertion only applies on hosts with at least 4 CPUs
(a single-core container can demonstrate correctness but not speedup).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.exec import ParallelExecutor, SerialExecutor
from repro.exec.pool import fork_available
from repro.gpu.device import Device

#: Grid geometry: ≥64 blocks per the acceptance criterion.
NUM_BLOCKS = 64
THREADS = 64
INNER = 64

#: Host parallelism needed before asserting the speedup target.
MIN_CPUS_FOR_SPEEDUP = 4
TARGET_SPEEDUP = 2.0


def _kernel(tc, x, y):
    """Compute-heavy streaming kernel; blocks touch disjoint cells."""
    i = tc.global_tid
    v = yield from tc.load(x, i)
    for _ in range(INNER):
        yield from tc.compute("fma")
        v = v * 1.000001 + 0.5
    yield from tc.store(y, i, v)


def _run(executor):
    dev = Device(executor=executor)
    n = NUM_BLOCKS * THREADS
    x = dev.from_array("x", np.arange(n, dtype=np.float64))
    y = dev.alloc("y", n, np.float64)
    t0 = time.perf_counter()
    kc = dev.launch(_kernel, NUM_BLOCKS, THREADS, args=(x, y))
    elapsed = time.perf_counter() - t0
    return dev.to_numpy(y), kc, elapsed


def compare(workers: int = 4):
    """Run serial vs parallel once; return (speedup, serial_s, parallel_s)."""
    y_s, kc_s, t_serial = _run(SerialExecutor())
    y_p, kc_p, t_parallel = _run(ParallelExecutor(workers=workers, processes=True))
    assert np.array_equal(y_s, y_p), "parallel result diverged from serial"
    assert kc_s.identical(kc_p), "parallel counters diverged from serial"
    return t_serial / t_parallel, t_serial, t_parallel


@pytest.mark.benchmark(group="exec")
def test_parallel_speedup(benchmark):
    if not fork_available():
        pytest.skip("fork start method unavailable")
    speedup, t_serial, t_parallel = benchmark.pedantic(
        lambda: compare(workers=4), rounds=1, iterations=1
    )
    print(f"\nBENCH exec serial={t_serial:.3f}s parallel={t_parallel:.3f}s "
          f"speedup={speedup:.2f}x workers=4 blocks={NUM_BLOCKS} "
          f"cpus={os.cpu_count()}")
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = os.cpu_count()
    if (os.cpu_count() or 1) >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= TARGET_SPEEDUP, (
            f"expected >= {TARGET_SPEEDUP}x with 4 workers on "
            f"{os.cpu_count()} CPUs, got {speedup:.2f}x"
        )


#: Repeats for the off-path overhead measurement (min-of-k kills noise).
OVERHEAD_ROUNDS = 5
#: The resilience acceptance target: faults off-path costs < 2%.
MAX_OFF_OVERHEAD_PCT = 2.0


def _time_one(faults) -> float:
    dev = Device(executor=SerialExecutor(), faults=faults)
    n = NUM_BLOCKS * THREADS
    x = dev.from_array("x", np.arange(n, dtype=np.float64))
    y = dev.alloc("y", n, np.float64)
    t0 = time.perf_counter()
    dev.launch(_kernel, NUM_BLOCKS, THREADS, args=(x, y))
    return time.perf_counter() - t0


def faults_off_overhead():
    """Return (overhead_pct, t_off, t_inert) for the fault hooks' off path.

    ``t_off`` runs with no plan at all; ``t_inert`` with an armed but
    spec-less :class:`repro.faults.FaultPlan` — every hook is consulted
    and must decline at hash-draw cost zero (specs are filtered per site
    before any draw happens).  The two legs are interleaved pairwise so
    host-load drift between series cannot masquerade as overhead, and
    min-of-k absorbs the remaining noise.
    """
    from repro.faults import FaultPlan

    t_off = t_inert = float("inf")
    for _ in range(OVERHEAD_ROUNDS):
        t_off = min(t_off, _time_one(None))
        t_inert = min(t_inert, _time_one(FaultPlan(seed=2023)))
    return (t_inert / t_off - 1.0) * 100.0, t_off, t_inert


@pytest.mark.benchmark(group="exec")
def test_faults_off_overhead(benchmark):
    overhead, t_off, t_inert = benchmark.pedantic(
        faults_off_overhead, rounds=1, iterations=1
    )
    print(f"\nBENCH faults-off off={t_off:.3f}s inert={t_inert:.3f}s "
          f"overhead={overhead:+.2f}%")
    benchmark.extra_info["overhead_pct"] = round(overhead, 2)
    if t_off >= 0.05:  # too-short baselines are all noise
        assert overhead < MAX_OFF_OVERHEAD_PCT, (
            f"faults off-path costs {overhead:.2f}% "
            f"(target < {MAX_OFF_OVERHEAD_PCT}%)"
        )


def main() -> int:
    overhead, t_off, t_inert = faults_off_overhead()
    print(f"BENCH faults-off off={t_off:.3f}s inert={t_inert:.3f}s "
          f"overhead={overhead:+.2f}%")
    if t_off >= 0.05 and overhead >= MAX_OFF_OVERHEAD_PCT:
        print(f"BENCH faults-off FAIL: above the {MAX_OFF_OVERHEAD_PCT}% target")
        return 1
    if not fork_available():
        print("BENCH exec SKIP (fork unavailable)")
        return 0
    speedup, t_serial, t_parallel = compare(workers=4)
    cpus = os.cpu_count() or 1
    print(f"BENCH exec serial={t_serial:.3f}s parallel={t_parallel:.3f}s "
          f"speedup={speedup:.2f}x workers=4 blocks={NUM_BLOCKS} cpus={cpus}")
    if cpus >= MIN_CPUS_FOR_SPEEDUP and speedup < TARGET_SPEEDUP:
        print(f"BENCH exec FAIL: below the {TARGET_SPEEDUP}x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
