"""Serve-tier benchmark: sustained concurrent load through the service.

Drives :class:`repro.serve.server.LaunchService` with the standard
loadgen workload (concurrent stream clients, mixed demo kernels, every
response verified against the NumPy oracle) and records
launches/second plus p50/p99 latency for three legs:

* ``unbatched`` — ``max_batch=1``: every request is its own grid (the
  pre-serve dispatch model, the comparison baseline);
* ``batched`` — coalescing up to 32 compatible requests into one
  merged grid per dispatch;
* ``warm_pool`` — batched dispatch through a persistent forked
  :class:`~repro.serve.lease.PoolLease` (skipped where fork is
  unavailable; recorded, not gated);
* ``journal`` — batched dispatch with the write-ahead request journal
  attached (keyed requests, fsync'd group commit to a temporary WAL):
  durability must ride the group-commit path, not the latency ladder.

The **gates** (``--check``, run by the CI ``serve-smoke`` job) follow
the repo's perf-gate philosophy (see ``bench_substrate.py``): absolute
throughput is machine-dependent and only recorded, while the gated
scores are machine-relative ratios measured from interleaved runs in
one process:

* ``p99_ratio`` = unbatched p99 / batched p99 — batching exists to
  absorb bursts, so it must keep cutting tail latency (hard floor
  :data:`P99_RATIO_FLOOR` plus baseline tolerance);
* ``throughput_ratio`` = batched / unbatched launches per second —
  coalescing must not tax sustained throughput (hard floor
  :data:`THROUGHPUT_RATIO_FLOOR`);
* ``journal_p99_ratio`` = journal-on p99 / journal-off p99 — one group
  fsync per dispatch must keep the durability tax under
  :data:`JOURNAL_P99_CEIL` (lower is better for this ratio);
* every leg must complete all launches with **zero** verification
  errors — a perf number from wrong answers is meaningless;
* the warm-pool leg must show zero worker respawns (the pool really
  stayed warm) and at least one warm dispatch per batch.

Run standalone (prints BENCH lines, writes/checks ``BENCH_serve.json``)::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --check
    PYTHONPATH=src python benchmarks/bench_serve.py --write-baseline
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile

from repro.exec.pool import fork_available
from repro.gpu.device import Device
from repro.serve.demo import demo_catalog
from repro.serve.lease import PoolLease
from repro.serve.loadgen import drive_service
from repro.serve.scheduler import FairScheduler
from repro.serve.server import LaunchService

#: Committed baseline that ``--check`` compares against.
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_serve.json")

#: Relative tolerance on the gated ratios vs the committed baseline.
TOLERANCE_PCT = 30

#: Hard floors, enforced by ``--check`` regardless of the baseline.
P99_RATIO_FLOOR = 1.1
THROUGHPUT_RATIO_FLOOR = 0.6

#: Hard ceiling on the durability tax: journal-on p99 must stay within
#: 15% of journal-off p99 (group commit, one fsync per dispatch group).
JOURNAL_P99_CEIL = 1.15

#: Interleaved (unbatched, batched) measurement pairs; score is best-of.
DEFAULT_REPS = 3

#: The workload every leg runs: concurrent stream clients with mixed
#: kernels, verified responses.
CLIENTS = 32
REQUESTS_PER_CLIENT = 4
SEED = 9


async def _run_leg(*, max_batch, lease=None, journal_path=None):
    service = LaunchService(
        Device(), demo_catalog(),
        scheduler=FairScheduler(max_queue=4096),
        lease=lease,
        max_batch=max_batch,
        max_inflight=4096,
    )
    if journal_path is not None:
        service.load_journal(journal_path)
    async with service:
        metrics = await drive_service(
            service,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            seed=SEED,
            keyed=journal_path is not None,
        )
    metrics["batches"] = float(service.stats["batches"])
    metrics["max_batch_size"] = float(service.stats["max_batch_size"])
    if service.journal is not None:
        metrics["journal_appends"] = float(service.journal.stats["appends"])
        metrics["journal_commits"] = float(service.journal.stats["commits"])
        service.journal.close()
    return metrics


def _leg(max_batch, lease=None, journal_path=None):
    return asyncio.run(_run_leg(max_batch=max_batch, lease=lease,
                                journal_path=journal_path))


def measure(reps: int = DEFAULT_REPS) -> dict:
    expected = float(CLIENTS * REQUESTS_PER_CLIENT)
    best = None
    journal_best = None
    for _ in range(reps):
        unbatched = _leg(1)
        batched = _leg(32)
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
            journal = _leg(32, journal_path=os.path.join(tmp, "wal"))
        for leg in (unbatched, batched, journal):
            if leg["errors"] or leg["launches"] != expected:
                raise SystemExit(
                    f"benchmark leg failed: {leg['errors']} errors, "
                    f"{leg['launches']}/{expected} launches"
                )
        p99_ratio = unbatched["p99_ms"] / max(batched["p99_ms"], 1e-9)
        tp_ratio = (batched["launches_per_s"]
                    / max(unbatched["launches_per_s"], 1e-9))
        journal_ratio = journal["p99_ms"] / max(batched["p99_ms"], 1e-9)
        if journal_best is None or journal_ratio < journal_best["ratio"]:
            journal_best = {"ratio": journal_ratio, "leg": journal}
        if best is None or p99_ratio > best["p99_ratio"]:
            best = {
                "p99_ratio": p99_ratio,
                "throughput_ratio": tp_ratio,
                "unbatched": unbatched,
                "batched": batched,
            }
        else:
            best["throughput_ratio"] = max(best["throughput_ratio"],
                                           tp_ratio)

    result = {
        "schema": 1,
        "metric": "launches_per_second",
        "tolerance_pct": TOLERANCE_PCT,
        "p99_ratio_floor": P99_RATIO_FLOOR,
        "throughput_ratio_floor": THROUGHPUT_RATIO_FLOOR,
        "journal_p99_ceil": JOURNAL_P99_CEIL,
        "workload": {
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "seed": SEED,
        },
        "gates": {
            "p99_ratio": best["p99_ratio"],
            "throughput_ratio": best["throughput_ratio"],
            "journal_p99_ratio": journal_best["ratio"],
        },
        "legs": {
            "unbatched": best["unbatched"],
            "batched": best["batched"],
            "journal": journal_best["leg"],
        },
    }

    if fork_available():
        lease = PoolLease(demo_catalog(), Device().params, workers=2)
        try:
            pool_leg = asyncio.run(_run_leg(max_batch=32, lease=lease))
            pool_leg["worker_respawns"] = float(
                lease.stats["worker_respawns"])
            pool_leg["warm_dispatches"] = float(
                lease.stats["warm_dispatches"])
        finally:
            lease.close()
        if pool_leg["errors"]:
            raise SystemExit("warm-pool leg returned errors")
        result["legs"]["warm_pool"] = pool_leg
    return result


def _print_bench(result: dict) -> None:
    for name, leg in sorted(result["legs"].items()):
        print(f"BENCH serve.{name}: {leg['launches_per_s']:.1f} launches/s "
              f"p50={leg['p50_ms']:.1f}ms p99={leg['p99_ms']:.1f}ms "
              f"errors={int(leg['errors'])}")
    g = result["gates"]
    print(f"BENCH serve.gates: p99_ratio={g['p99_ratio']:.2f} "
          f"throughput_ratio={g['throughput_ratio']:.2f} "
          f"journal_p99_ratio={g['journal_p99_ratio']:.2f}")


def check_against_baseline(result: dict, baseline_path: str) -> int:
    failures = []
    g = result["gates"]
    if g["p99_ratio"] < P99_RATIO_FLOOR:
        failures.append(
            f"p99_ratio {g['p99_ratio']:.2f} below hard floor "
            f"{P99_RATIO_FLOOR} — batching no longer cuts tail latency")
    if g["throughput_ratio"] < THROUGHPUT_RATIO_FLOOR:
        failures.append(
            f"throughput_ratio {g['throughput_ratio']:.2f} below hard "
            f"floor {THROUGHPUT_RATIO_FLOOR} — coalescing is taxing "
            f"sustained throughput")
    if g["journal_p99_ratio"] > JOURNAL_P99_CEIL:
        failures.append(
            f"journal_p99_ratio {g['journal_p99_ratio']:.2f} above hard "
            f"ceiling {JOURNAL_P99_CEIL} — the WAL is on the latency "
            f"ladder instead of riding group commit")
    journal_leg = result["legs"]["journal"]
    if journal_leg["journal_commits"] > journal_leg["batches"] + 1:
        failures.append(
            "journal leg committed more often than it dispatched — "
            "group commit is not grouping")
    pool = result["legs"].get("warm_pool")
    if pool is not None:
        if pool["worker_respawns"]:
            failures.append(
                f"warm-pool leg respawned {int(pool['worker_respawns'])} "
                f"workers with no faults injected — pool is not staying "
                f"warm")
        if pool["warm_dispatches"] < pool["batches"]:
            failures.append(
                "warm-pool leg dispatched fewer warm batches than the "
                "service ran — batches are bypassing the pool")
    if os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        tol = baseline.get("tolerance_pct", TOLERANCE_PCT) / 100.0
        for key in ("p99_ratio", "throughput_ratio"):
            base = baseline.get("gates", {}).get(key)
            if base is None:
                continue
            if g[key] < base * (1.0 - tol):
                failures.append(
                    f"{key} {g[key]:.2f} regressed more than {tol:.0%} "
                    f"below baseline {base:.2f}")
        base = baseline.get("gates", {}).get("journal_p99_ratio")
        if base is not None and g["journal_p99_ratio"] > base * (1.0 + tol):
            # Lower is better for the durability tax.
            failures.append(
                f"journal_p99_ratio {g['journal_p99_ratio']:.2f} regressed "
                f"more than {tol:.0%} above baseline {base:.2f}")
    else:
        failures.append(f"no baseline at {baseline_path} "
                        f"(run --write-baseline first)")
    for msg in failures:
        print(f"GATE FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("serve gates: OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="fail if gates regress vs the committed baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help=f"rewrite {BASELINE_PATH}")
    ap.add_argument("--reps", type=int, default=DEFAULT_REPS)
    args = ap.parse_args(argv)

    result = measure(reps=args.reps)
    _print_bench(result)
    if args.write_baseline:
        with open(BASELINE_PATH, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check:
        return check_against_baseline(result, BASELINE_PATH)
    return 0


if __name__ == "__main__":
    sys.exit(main())
