"""Fuzz-tier throughput: programs/second through the differential matrix.

The standing campaign's value scales with how many programs a wall-clock
budget covers, so this bench times (a) the smoke matrix (three serial
engine legs — the per-PR slice) and (b) the full matrix (adds parallel
executors, a permuted schedule, and serve batching), plus the DPOR
explorer on the corpus's order-dependent kernel.

Run standalone (prints BENCH lines)::

    PYTHONPATH=src python benchmarks/bench_fuzz.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_fuzz.py --benchmark-only

Floors are deliberately loose (2 programs/s smoke, 0.5 full) — they
catch an accidental 10× harness regression, not host noise; ratio gates
live with the engine benches, not here.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once
from repro.fuzz.harness import default_legs, run_campaign

#: Seeds per timed leg — small enough for CI, large enough to amortize
#: interpreter warm-up.
SMOKE_PROGRAMS = 12
FULL_PROGRAMS = 6

#: Regression floors, programs/second (loose by design, see module doc).
SMOKE_FLOOR = 2.0
FULL_FLOOR = 0.5


def _campaign_rate(count: int, smoke: bool) -> float:
    t0 = time.perf_counter()
    campaign = run_campaign(count, 2023,
                            legs=default_legs(smoke=smoke))
    elapsed = time.perf_counter() - t0
    assert campaign.ok, campaign.describe()
    return count / elapsed


def smoke_matrix_throughput() -> float:
    rate = _campaign_rate(SMOKE_PROGRAMS, True)
    print(f"BENCH fuzz smoke-matrix: {rate:.2f} programs/s")
    assert rate >= SMOKE_FLOOR
    return rate


def full_matrix_throughput() -> float:
    rate = _campaign_rate(FULL_PROGRAMS, False)
    print(f"BENCH fuzz full-matrix: {rate:.2f} programs/s")
    assert rate >= FULL_FLOOR
    return rate


def dpor_vs_sampling():
    """The pruning claim as a bench: directed exploration must keep
    executing strictly fewer schedules than the no-stop sampling loop
    on the corpus's order-dependent kernel."""
    from repro.sanitizer.corpus import order_dependent_run
    from repro.sanitizer.schedule import (
        explore_schedules,
        explore_schedules_dpor,
    )

    t0 = time.perf_counter()
    directed = explore_schedules_dpor(order_dependent_run)
    directed_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sampled = explore_schedules(order_dependent_run, schedules=64,
                                stop_on_divergence=False)
    sampled_s = time.perf_counter() - t0
    assert directed.order_dependent and sampled.order_dependent
    assert directed.stats.runs < sampled.stats.runs
    print(f"BENCH dpor: {directed.stats.runs} runs in {directed_s:.3f}s "
          f"vs sampling {sampled.stats.runs} runs in {sampled_s:.3f}s "
          f"(pruned {directed.stats.pruned_equivalent} equivalent)")
    return directed, sampled


@pytest.mark.benchmark(group="fuzz")
def test_smoke_matrix_throughput(benchmark):
    rate = run_once(benchmark, smoke_matrix_throughput)
    benchmark.extra_info["programs_per_s"] = round(rate, 2)


@pytest.mark.benchmark(group="fuzz")
def test_full_matrix_throughput(benchmark):
    rate = run_once(benchmark, full_matrix_throughput)
    benchmark.extra_info["programs_per_s"] = round(rate, 2)


@pytest.mark.benchmark(group="fuzz")
def test_dpor_beats_sampling_runs(benchmark):
    directed, sampled = run_once(benchmark, dpor_vs_sampling)
    benchmark.extra_info["directed_runs"] = directed.stats.runs
    benchmark.extra_info["sampled_runs"] = sampled.stats.runs
    benchmark.extra_info["pruned_equivalent"] = directed.stats.pruned_equivalent


if __name__ == "__main__":
    smoke_matrix_throughput()
    full_matrix_throughput()
    dpor_vs_sampling()
