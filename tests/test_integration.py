"""Cross-layer integration tests: multi-launch pipelines, buffer reuse,
end-to-end applications composed from the public API."""

import numpy as np
import pytest

from repro.core import api as omp
from repro.gpu.costmodel import amd_mi100, benchmark_profile, nvidia_a100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode


class TestJacobiPipeline:
    """Iterated stencil: two buffers ping-pong across kernel launches."""

    def test_multi_launch_double_buffer(self):
        dev = Device(nvidia_a100())
        n = 128
        rng = np.random.default_rng(5)
        host = rng.standard_normal(n)
        a = dev.from_array("a", host)
        b = dev.from_array("b", np.zeros(n))

        def smooth(tc, ivs, view):
            (i,) = ivs
            if i == 0 or i == n - 1:
                v = yield from tc.load(view["src"], i)
                yield from tc.store(view["dst"], i, v)
                return
            vals = yield from tc.load_vec(view["src"], (i - 1, i, i + 1))
            yield from tc.compute("fma", 2)
            yield from tc.store(view["dst"], i, sum(vals) / 3.0)

        kernel = omp.compile(
            omp.target(omp.teams_distribute_parallel_for(n, body=smooth)),
            ("dst", "src"),
        )

        ref = host.copy()
        src, dst = a, b
        for _ in range(4):
            omp.launch(dev, kernel, num_teams=2, team_size=64,
                       args={"src": src, "dst": dst})
            new = ref.copy()
            new[1:-1] = (ref[:-2] + ref[1:-1] + ref[2:]) / 3.0
            ref = new
            src, dst = dst, src
        assert np.allclose(src.to_numpy(), ref)

    def test_shared_memory_state_fresh_per_launch(self):
        """Each launch builds fresh blocks: no shared-state bleed-through."""
        dev = Device(nvidia_a100())
        out = dev.alloc("out", 1, np.float64)

        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"val": float(ivs[0])}

        def body(tc, ivs, view):
            i, j = ivs
            yield from tc.atomic_add(view["out"], 0, float(view["val"]))

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                4, pre=pre, captures=[("val", "f64")],
                nested=omp.simd(2, body=body), uses=(),
            )
        )
        kernel = omp.compile(tree, ("out",))
        for _ in range(3):
            out.fill_from(np.zeros(1))
            r = omp.launch(dev, kernel, num_teams=1, team_size=32, simd_len=2,
                           args={"out": out})
            assert out.read(0) == (0 + 1 + 2 + 3) * 2
            assert r.runtime.sharing_fallbacks == 0


class TestModeEquivalenceMatrix:
    """One computation, every reachable mode combination, identical output."""

    N, M = 128, 16

    def _expected(self):
        return np.sqrt(np.arange(self.N * self.M, dtype=np.float64)) + 1.0

    def _body(self):
        M = self.M

        def element(tc, ivs, view):
            i, j = ivs[-2], ivs[-1]
            idx = i * M + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.compute("sfu")
            yield from tc.store(view["y"], idx, float(np.sqrt(v)) + 1.0)

        return element

    def _args(self, dev):
        return {
            "x": dev.from_array("x", np.arange(self.N * self.M, dtype=np.float64)),
            "y": dev.from_array("y", np.zeros(self.N * self.M)),
        }

    def _pre(self):
        M = self.M

        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"base": int(ivs[0]) * M}

        return pre

    def _body_base(self):
        def element(tc, ivs, view):
            j = ivs[-1]
            idx = int(view["base"]) + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.compute("sfu")
            yield from tc.store(view["y"], idx, float(np.sqrt(v)) + 1.0)

        return element

    @pytest.mark.parametrize("simd_len", [1, 4, 16])
    def test_all_combinations_agree(self, simd_len):
        trees = {
            "tdpf+tight": omp.target(
                omp.teams_distribute_parallel_for(
                    self.N, nested=omp.simd(self.M, body=self._body())
                )
            ),
            "tdpf+nontight": omp.target(
                omp.teams_distribute_parallel_for(
                    self.N,
                    pre=self._pre(),
                    captures=[("base", "i64")],
                    nested=omp.simd(self.M, body=self._body_base()),
                    uses=(),
                )
            ),
            "td+pf+tight": omp.target(
                omp.teams_distribute(
                    self.N,
                    nested=omp.parallel_for(
                        omp.loop(1, nested=omp.simd(self.M, body=self._strip_mid()))
                    ),
                )
            ),
        }
        for label, tree in trees.items():
            dev = Device(nvidia_a100())
            args = self._args(dev)
            omp.launch(dev, tree, num_teams=4, team_size=64, simd_len=simd_len,
                       args=args)
            assert np.allclose(args["y"].to_numpy(), self._expected()), label

    def _strip_mid(self):
        M = self.M

        def element(tc, ivs, view):
            i, _mid, j = ivs
            idx = i * M + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.compute("sfu")
            yield from tc.store(view["y"], idx, float(np.sqrt(v)) + 1.0)

        return element


class TestCrossProfile:
    def test_same_program_both_profiles(self):
        """One compiled program runs on NVIDIA and AMD profiles."""

        def element(tc, ivs, view):
            i, j = ivs
            idx = i * 32 + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v * 2.0)

        tree = omp.target(
            omp.teams_distribute_parallel_for(8, nested=omp.simd(32, body=element))
        )
        for params in (nvidia_a100(), amd_mi100()):
            dev = Device(params)
            args = {
                "x": dev.from_array("x", np.arange(256, dtype=np.float64)),
                "y": dev.from_array("y", np.zeros(256)),
            }
            r = omp.launch(dev, tree, num_teams=2,
                           team_size=128 if params.warp_size == 32 else 128,
                           simd_len=8, args=args)
            assert np.array_equal(args["y"].to_numpy(), 2.0 * np.arange(256))

    def test_generic_mode_cheaper_on_spmd_structure(self):
        """Sanity: for the same kernel, SPMD never loses to forced generic."""
        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["y"], i, v)

        cycles = {}
        for mode in (ExecMode.AUTO, ExecMode.GENERIC):
            dev = Device(benchmark_profile())
            args = {
                "x": dev.from_array("x", np.arange(512, dtype=np.float64)),
                "y": dev.from_array("y", np.zeros(512)),
            }
            tree = omp.target(
                omp.teams_distribute_parallel_for(512, body=body),
                teams_mode=mode,
            )
            r = omp.launch(dev, tree, num_teams=4, team_size=128, args=args)
            cycles[mode] = r.cycles
        assert cycles[ExecMode.GENERIC] > cycles[ExecMode.AUTO]
