"""Tests for warp vote primitives (any/all/ballot)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeadlockError


class TestVotes:
    def test_ballot_full_warp(self, device):
        out = device.alloc("o", 32, np.uint64)

        def k(tc, out):
            b = yield from tc.ballot(tc.lane_id % 2 == 0)
            yield from tc.store(out, tc.lane_id, b)

        device.launch(k, 1, 32, args=(out,))
        expect = sum(1 << i for i in range(0, 32, 2))
        assert np.all(out.to_numpy() == expect)

    def test_any_and_all(self, device):
        res = device.alloc("r", 4, np.int64)

        def k(tc, res):
            a1 = yield from tc.vote_any(tc.lane_id == 7)
            a2 = yield from tc.vote_any(False)
            a3 = yield from tc.vote_all(tc.lane_id < 32)
            a4 = yield from tc.vote_all(tc.lane_id < 31)
            if tc.lane_id == 0:
                yield from tc.store_vec(res, range(4), (int(a1), int(a2), int(a3), int(a4)))

        device.launch(k, 1, 32, args=(res,))
        assert list(res.to_numpy()) == [1, 0, 1, 0]

    def test_subgroup_votes_independent(self, device):
        out = device.alloc("o", 32, np.uint64)

        def k(tc, out):
            seg = tc.lane_id // 8
            mask = 0xFF << (8 * seg)
            b = yield from tc.ballot(seg == 1, mask)
            yield from tc.store(out, tc.lane_id, b)

        device.launch(k, 1, 32, args=(out,))
        res = out.to_numpy()
        assert np.all(res[0:8] == 0)
        assert np.all(res[8:16] == 0xFF00)
        assert np.all(res[16:] == 0)

    def test_vote_with_retired_lane_deadlocks(self, device):
        def k(tc):
            if tc.lane_id == 0:
                return
                yield
            yield from tc.vote_any(True)

        with pytest.raises(DeadlockError):
            device.launch(k, 1, 32)

    @settings(deadline=None, max_examples=20)
    @given(preds=st.lists(st.booleans(), min_size=32, max_size=32))
    def test_ballot_matches_python(self, preds):
        from repro.gpu.costmodel import nvidia_a100
        from repro.gpu.device import Device

        dev = Device(nvidia_a100())
        out = dev.alloc("o", 1, np.uint64)

        def k(tc, out):
            b = yield from tc.ballot(preds[tc.lane_id])
            if tc.lane_id == 0:
                yield from tc.store(out, 0, b)

        dev.launch(k, 1, 32, args=(out,))
        expect = sum(1 << i for i, p in enumerate(preds) if p)
        assert int(out.read(0)) == expect

    def test_activemask_idiom(self, device):
        """The DeviceRTL activemask idiom: ballot(True) inside divergence."""
        out = device.alloc("o", 1, np.uint64)

        def k(tc, out):
            if tc.lane_id < 10:
                m = yield from tc.ballot(True, mask=(1 << 10) - 1)
                if tc.lane_id == 0:
                    yield from tc.store(out, 0, m)
            else:
                yield from tc.compute("alu")

        device.launch(k, 1, 32, args=(out,))
        assert int(out.read(0)) == (1 << 10) - 1
