"""Unit and property tests for the coalescing / bank-conflict models."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu.coalescing import (
    global_sectors,
    shared_conflict_degree,
    span_sectors,
    transaction_summary,
)


class TestGlobalSectors:
    def test_fully_coalesced_float32_warp(self):
        # 32 lanes x 4 bytes contiguous = 128 bytes = 4 sectors.
        addrs = [i * 4 for i in range(32)]
        assert global_sectors(addrs) == 4

    def test_fully_coalesced_float64_warp(self):
        addrs = [i * 8 for i in range(32)]
        assert global_sectors(addrs) == 8

    def test_fully_scattered(self):
        addrs = [i * 128 for i in range(32)]
        assert global_sectors(addrs) == 32

    def test_broadcast_single_sector(self):
        assert global_sectors([64] * 32) == 1

    def test_empty(self):
        assert global_sectors([]) == 0

    def test_custom_sector_size(self):
        addrs = [0, 32, 64, 96]
        assert global_sectors(addrs, sector_bytes=128) == 1


class TestSpanSectors:
    def test_aligned_span(self):
        assert span_sectors(0, 32) == 1
        assert span_sectors(0, 33) == 2

    def test_unaligned_span(self):
        assert span_sectors(31, 2) == 2

    def test_zero_bytes(self):
        assert span_sectors(100, 0) == 0


class TestSharedConflicts:
    def test_conflict_free_stride_one(self):
        addrs = [i * 4 for i in range(32)]
        assert shared_conflict_degree(addrs) == 1

    def test_two_way_conflict_stride_two(self):
        addrs = [i * 8 for i in range(32)]
        assert shared_conflict_degree(addrs) == 2

    def test_worst_case_same_bank(self):
        addrs = [i * 32 * 4 for i in range(32)]
        assert shared_conflict_degree(addrs) == 32

    def test_broadcast_is_free(self):
        # Same word from every lane: one pass.
        assert shared_conflict_degree([128] * 32) == 1

    def test_empty_access(self):
        assert shared_conflict_degree([]) == 0


class TestTransactionSummary:
    def test_returns_sectors_and_ideal(self):
        addrs = [i * 128 for i in range(8)]
        sectors, ideal = transaction_summary(addrs)
        assert sectors == 8
        assert ideal == 1

    def test_empty(self):
        assert transaction_summary([]) == (0, 0)


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=64))
def test_sector_count_bounds(addrs):
    """1 <= sectors <= len(addrs); dedup never increases the count."""
    n = global_sectors(addrs)
    assert 1 <= n <= len(addrs)
    assert global_sectors(set(addrs)) == n


@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=64))
def test_conflict_degree_bounds(addrs):
    """Conflict degree is between 1 and the number of distinct words."""
    d = shared_conflict_degree(addrs)
    words = {a // 4 for a in addrs}
    assert 1 <= d <= len(words)


@given(
    st.integers(min_value=0, max_value=1 << 20),
    st.integers(min_value=1, max_value=4096),
)
def test_span_matches_enumeration(addr, nbytes):
    """span_sectors agrees with enumerating every byte's sector."""
    expected = len({(addr + k) // 32 for k in range(nbytes)})
    assert span_sectors(addr, nbytes) == expected
