"""Paged buffer state: dirty bitmaps, extent recycling, shared-memory edges.

Covers the columnar-state substrate contracts:

* every mutating :class:`~repro.gpu.memory.Buffer` path marks the pages
  it touches (the O(dirty) snapshot/merge machinery depends on it);
* :class:`~repro.gpu.memory.GlobalMemory` recycles freed address
  extents — alloc/free churn keeps ``live_bytes`` and the address
  high-water stable while handles stay monotonic;
* ``SharedMemory.reset()`` staleness and ``_align`` edge cases
  (zero-size allocations, capacity-boundary allocation, alignment
  padding accounting).
"""

import numpy as np
import pytest

from repro.errors import AllocationError, MemoryFault
from repro.gpu.memory import (
    GLOBAL_ALIGN,
    PAGE_ELEMS,
    SHARED_ALIGN,
    Buffer,
    GlobalMemory,
    SharedMemory,
    _align,
)


def dirty_set(buf):
    return set(buf.dirty_page_indices().tolist())


class TestDirtyBitmap:
    def test_fresh_buffer_is_clean(self):
        buf = Buffer("b", "global", 3 * PAGE_ELEMS, np.float64)
        assert buf.npages == 3
        assert dirty_set(buf) == set()

    def test_npages_edges(self):
        assert Buffer("b", "global", 0, np.float64).npages == 1
        assert Buffer("b", "global", PAGE_ELEMS, np.float64).npages == 1
        assert Buffer("b", "global", PAGE_ELEMS + 1, np.float64).npages == 2

    def test_page_span_clamps_tail(self):
        buf = Buffer("b", "global", PAGE_ELEMS + 7, np.float64)
        assert buf.page_span(0) == (0, PAGE_ELEMS)
        assert buf.page_span(1) == (PAGE_ELEMS, PAGE_ELEMS + 7)

    def test_write_marks_its_page(self):
        buf = Buffer("b", "global", 4 * PAGE_ELEMS, np.float64)
        buf.write(PAGE_ELEMS + 3, 1.0)
        assert dirty_set(buf) == {1}

    def test_scatter_slice_marks_span(self):
        buf = Buffer("b", "global", 4 * PAGE_ELEMS, np.float64)
        buf.scatter(slice(PAGE_ELEMS - 1, PAGE_ELEMS + 1), np.ones(2))
        assert dirty_set(buf) == {0, 1}

    def test_scatter_array_marks_touched_pages_only(self):
        buf = Buffer("b", "global", 4 * PAGE_ELEMS, np.float64)
        buf.scatter(np.array([0, 3 * PAGE_ELEMS]), np.ones(2))
        assert dirty_set(buf) == {0, 3}

    def test_faulting_scatter_marks_committed_prefix(self):
        buf = Buffer("b", "global", 2 * PAGE_ELEMS, np.float64)
        with pytest.raises(MemoryFault):
            buf.scatter(np.array([0, PAGE_ELEMS, 10 * PAGE_ELEMS]),
                        np.ones(3))
        # The two in-bounds elements committed and their pages are dirty.
        assert dirty_set(buf) == {0, 1}

    def test_fill_from_marks_everything(self):
        buf = Buffer("b", "global", 2 * PAGE_ELEMS, np.float64)
        buf.fill_from(np.ones(2 * PAGE_ELEMS))
        assert dirty_set(buf) == {0, 1}

    def test_flip_bit_marks_its_page(self):
        buf = Buffer("b", "global", 2 * PAGE_ELEMS, np.float64)
        buf.flip_bit(PAGE_ELEMS, 0)
        assert dirty_set(buf) == {1}

    def test_clear_dirty_bumps_epoch(self):
        buf = Buffer("b", "global", PAGE_ELEMS, np.float64)
        buf.write(0, 1.0)
        epoch = buf.snap_epoch
        buf.clear_dirty()
        assert dirty_set(buf) == set()
        assert buf.snap_epoch == epoch + 1

    def test_mark_dirty_sel_all_selector_shapes(self):
        buf = Buffer("b", "global", 4 * PAGE_ELEMS, np.float64)
        buf.mark_dirty_sel(5)
        buf.mark_dirty_sel(slice(PAGE_ELEMS, PAGE_ELEMS + 1))
        buf.mark_dirty_sel(np.array([2 * PAGE_ELEMS]))
        assert dirty_set(buf) == {0, 1, 2}

    def test_gmem_from_array_and_scalar_mark(self):
        gmem = GlobalMemory()
        a = gmem.from_array("a", np.ones(PAGE_ELEMS + 1))
        s = gmem.scalar("s", 7.0)
        assert dirty_set(a) == {0, 1}
        assert dirty_set(s) == {0}


class TestExtentRecycling:
    def test_fresh_sequence_matches_bump_allocator(self):
        gmem = GlobalMemory()
        a = gmem.alloc("a", 8, np.float64)
        b = gmem.alloc("b", 300, np.float64)
        assert a.base == GLOBAL_ALIGN
        assert b.base == _align(a.base + a.nbytes, GLOBAL_ALIGN)

    def test_free_recycles_address_and_rewinds_tail(self):
        gmem = GlobalMemory()
        a = gmem.alloc("a", 8, np.float64)
        high = gmem.address_high_water
        gmem.free(a)
        assert gmem.address_high_water == a.base  # tail rewound
        b = gmem.alloc("b", 8, np.float64)
        assert b.base == a.base
        assert gmem.address_high_water == high

    def test_hole_reuse_first_fit(self):
        gmem = GlobalMemory()
        a = gmem.alloc("a", 8, np.float64)
        b = gmem.alloc("b", 8, np.float64)
        c = gmem.alloc("c", 8, np.float64)
        gmem.free(b)
        d = gmem.alloc("d", 8, np.float64)  # fits b's hole exactly
        assert d.base == b.base
        assert gmem.is_live(a) and gmem.is_live(c)

    def test_adjacent_frees_coalesce(self):
        gmem = GlobalMemory()
        a = gmem.alloc("a", 8, np.float64)
        b = gmem.alloc("b", 8, np.float64)
        anchor = gmem.alloc("anchor", 8, np.float64)
        gmem.free(a)
        gmem.free(b)
        # The coalesced hole serves an allocation neither piece could.
        big = gmem.alloc("big", 2 * GLOBAL_ALIGN // 8, np.float64)
        assert big.base == a.base
        assert gmem.is_live(anchor)

    def test_churn_keeps_live_bytes_and_high_water_stable(self):
        gmem = GlobalMemory()
        keep = gmem.alloc("keep", 1024, np.float64)
        base_live = gmem.live_bytes
        high = gmem.address_high_water
        handles = []
        for i in range(200):
            buf = gmem.alloc(f"churn{i}", 512, np.float64)
            handles.append(buf.handle)
            gmem.free(buf)
        assert gmem.live_bytes == base_live
        assert gmem.address_high_water == high  # the regression gate
        assert handles == sorted(handles)  # handles never recycle
        assert len(set(handles)) == len(handles)
        assert gmem.is_live(keep)

    def test_handles_stay_monotonic_across_reuse(self):
        gmem = GlobalMemory()
        a = gmem.alloc("a", 8, np.float64)
        gmem.free(a)
        b = gmem.alloc("b", 8, np.float64)
        assert b.base == a.base
        assert b.handle > a.handle
        with pytest.raises(MemoryFault):
            gmem.lookup(a.handle)

    def test_double_free_still_rejected(self):
        gmem = GlobalMemory()
        a = gmem.alloc("a", 8, np.float64)
        gmem.free(a)
        with pytest.raises(MemoryFault, match="double free"):
            gmem.free(a)


class TestSharedMemoryEdges:
    def test_reset_staleness(self):
        shm = SharedMemory(capacity=1024)
        a = shm.alloc("a", 4, np.float64)
        a.fill_from(np.arange(4.0))
        shm.reset()
        b = shm.alloc("b", 4, np.float64)
        # The scratchpad rewound: b occupies a's old address range, and
        # a's handle-less Buffer is stale by contract (its storage is a
        # disjoint ndarray, so reads don't alias — the *address* does).
        assert b.base == a.base
        assert shm.used == a.nbytes
        assert np.all(b.to_numpy() == 0.0)

    def test_zero_size_alloc_consumes_no_space(self):
        shm = SharedMemory(capacity=64)
        z = shm.alloc("z", 0, np.float64)
        after = shm.used
        nxt = shm.alloc("n", 1, np.float64)
        assert z.size == 0 and z.nbytes == 0
        assert nxt.base == _align(after, SHARED_ALIGN)

    def test_capacity_boundary_alloc(self):
        shm = SharedMemory(capacity=64)
        buf = shm.alloc("all", 8, np.float64)  # exactly the capacity
        assert buf.nbytes == 64 and shm.remaining == 0
        with pytest.raises(AllocationError):
            shm.alloc("one", 1, np.uint8)

    def test_alignment_padding_accounted(self):
        shm = SharedMemory(capacity=64)
        shm.alloc("pad", 1, np.uint8)  # cursor -> 1
        b = shm.alloc("b", 1, np.float64)
        assert b.base == SHARED_ALIGN  # padded up from 1
        assert shm.used == SHARED_ALIGN + 8

    def test_align_edge_cases(self):
        assert _align(0, 8) == 0
        assert _align(1, 8) == 8
        assert _align(8, 8) == 8
        assert _align(9, 256) == 256
        assert _align(256, 256) == 256
        assert _align(257, 256) == 512
