"""Device-level tests: launches, counters, L1, LSU transactions, latency."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device


class TestLaunchValidation:
    def test_zero_blocks(self, device):
        def k(tc):
            yield from tc.compute()

        with pytest.raises(LaunchError, match="at least one block"):
            device.launch(k, 0, 32)

    def test_too_many_threads(self, device):
        def k(tc):
            yield from tc.compute()

        with pytest.raises(LaunchError, match="threads_per_block"):
            device.launch(k, 1, 2048)

    def test_last_launch_recorded(self, device):
        def k(tc):
            yield from tc.compute()

        kc = device.launch(k, 1, 32)
        assert device.last_launch is kc


class TestThreadIdentity:
    def test_global_tid_and_geometry(self, device):
        out = device.alloc("o", 128, np.int64)

        def k(tc, out):
            assert tc.num_blocks == 4
            assert tc.block_dim == 32
            yield from tc.store(out, tc.global_tid, tc.block_id * 100 + tc.tid)

        device.launch(k, 4, 32, args=(out,))
        expect = np.concatenate([b * 100 + np.arange(32) for b in range(4)])
        assert np.array_equal(out.to_numpy(), expect)

    def test_warp_and_lane_ids(self, device):
        out = device.alloc("o", 96, np.int64)

        def k(tc, out):
            yield from tc.store(out, tc.tid, tc.warp_id * 1000 + tc.lane_id)

        device.launch(k, 1, 96, args=(out,))
        expect = np.array([t // 32 * 1000 + t % 32 for t in range(96)])
        assert np.array_equal(out.to_numpy(), expect)


class TestL1Cache:
    def test_repeated_loads_hit(self, device):
        x = device.from_array("x", np.arange(4, dtype=np.float64))

        def k(tc, x):
            for _ in range(10):
                yield from tc.load(x, 0)

        kc = device.launch(k, 1, 1, args=(x,))
        assert kc.total("l1_misses") == 1
        assert kc.total("l1_hits") == 9

    def test_cache_is_per_block(self, device):
        x = device.from_array("x", np.arange(4, dtype=np.float64))

        def k(tc, x):
            yield from tc.load(x, 0)

        kc = device.launch(k, 4, 1, args=(x,))
        assert kc.total("l1_misses") == 4

    def test_lru_eviction(self):
        params = nvidia_a100().with_overrides(l1_size_bytes=64)  # 2 sectors
        dev = Device(params)
        x = dev.from_array("x", np.zeros(32))  # 8 sectors

        def k(tc, x):
            # Touch 3 distinct sectors, then re-touch the first: evicted.
            yield from tc.load(x, 0)
            yield from tc.load(x, 4)
            yield from tc.load(x, 8)
            yield from tc.load(x, 0)

        kc = dev.launch(k, 1, 1, args=(x,))
        assert kc.total("l1_misses") == 4

    def test_contiguous_vector_run_counts_sectors_once(self, device):
        x = device.from_array("x", np.arange(8, dtype=np.float64))

        def k(tc, x):
            yield from tc.load_vec(x, range(8))  # 64 bytes = 2 sectors

        kc = device.launch(k, 1, 1, args=(x,))
        assert kc.total("l1_misses") == 2


class TestLsuTransactions:
    def test_coalesced_warp_load(self, device):
        x = device.from_array("x", np.arange(32, dtype=np.float64))

        def k(tc, x):
            yield from tc.load(x, tc.lane_id)

        kc = device.launch(k, 1, 32, args=(x,))
        assert kc.total("lsu_transactions") == 8  # 256B / 32B

    def test_scattered_warp_load(self, device):
        x = device.from_array("x", np.zeros(32 * 8))

        def k(tc, x):
            yield from tc.load(x, tc.lane_id * 8)  # 64B stride

        kc = device.launch(k, 1, 32, args=(x,))
        assert kc.total("lsu_transactions") == 32

    def test_broadcast_is_one_transaction(self, device):
        x = device.from_array("x", np.zeros(4))

        def k(tc, x):
            yield from tc.load(x, 0)

        kc = device.launch(k, 1, 32, args=(x,))
        assert kc.total("lsu_transactions") == 1


class TestLatencyExposure:
    def test_dependent_misses_count_rounds(self, device):
        x = device.from_array("x", np.zeros(1024))

        def k(tc, x):
            for i in range(5):
                yield from tc.load(x, i * 64)  # 5 distinct sectors

        kc = device.launch(k, 1, 1, args=(x,))
        assert kc.total("mem_serial_rounds") == 5

    def test_l1_hits_do_not_stall(self, device):
        x = device.from_array("x", np.zeros(4))

        def k(tc, x):
            for _ in range(5):
                yield from tc.load(x, 0)

        kc = device.launch(k, 1, 1, args=(x,))
        assert kc.total("mem_serial_rounds") == 1

    def test_warps_overlap_in_one_round(self, device):
        x = device.from_array("x", np.zeros(1024))

        def k(tc, x):
            yield from tc.load(x, tc.tid * 4)

        kc = device.launch(k, 1, 128, args=(x,))
        # All four warps miss in the same round: one exposure.
        assert kc.total("mem_serial_rounds") == 1

    def test_stores_do_not_stall(self, device):
        y = device.alloc("y", 1024, np.float64)

        def k(tc, y):
            for i in range(5):
                yield from tc.store(y, i * 64, 1.0)

        kc = device.launch(k, 1, 1, args=(y,))
        assert kc.total("mem_serial_rounds") == 0

    def test_atomics_stall(self, device):
        y = device.alloc("y", 1, np.float64)

        def k(tc, y):
            yield from tc.atomic_add(y, 0, 1.0)

        kc = device.launch(k, 1, 32, args=(y,))
        assert kc.total("mem_serial_rounds") == 1


class TestCountersSummary:
    def test_summary_contains_headline_fields(self, device):
        x = device.from_array("x", np.zeros(32))

        def k(tc, x):
            v = yield from tc.load(x, tc.lane_id)
            yield from tc.compute("fma")
            yield from tc.syncthreads()
            yield from tc.store(x, tc.lane_id, v + 1)

        kc = device.launch(k, 2, 32, args=(x,))
        s = kc.summary()
        for key in ("cycles", "rounds", "issue_cycles", "mem_cycles",
                    "sync_cycles", "global_sectors", "syncblocks"):
            assert key in s
        assert s["blocks"] == 2
        assert kc.cycles > 0

    def test_coalescing_efficiency_bounds(self, device):
        x = device.from_array("x", np.zeros(32 * 16))

        def k(tc, x):
            yield from tc.load(x, tc.lane_id * 16)

        kc = device.launch(k, 1, 32, args=(x,))
        eff = kc.blocks[0].coalescing_efficiency()
        assert 0.0 < eff <= 1.0

    def test_local_buffer_accesses_counted(self, device):
        def k(tc):
            tmp = tc.alloca("t", 4, np.float64)
            yield from tc.store(tmp, 0, 1.0)
            yield from tc.load(tmp, 0)

        kc = device.launch(k, 1, 32)
        assert kc.total("local_accesses") == 64
        assert kc.total("global_load_sectors") == 0
