"""Unit tests for the event vocabulary itself."""

import numpy as np
import pytest

from repro.gpu.events import (
    ATOMIC_OPS,
    SHUFFLE_MODES,
    AtomicOp,
    Compute,
    Load,
    Shuffle,
    Store,
    SyncBlock,
    SyncWarp,
    T_ATOMIC,
    T_COMPUTE,
    T_LOAD,
    T_SHUFFLE,
    T_STORE,
    T_SYNCBLOCK,
    T_SYNCWARP,
)
from repro.gpu.memory import Buffer


def buf():
    return Buffer("b", "global", 4, np.float64)


def test_tags_are_distinct():
    tags = {T_COMPUTE, T_LOAD, T_STORE, T_ATOMIC, T_SYNCWARP, T_SYNCBLOCK, T_SHUFFLE}
    assert len(tags) == 7


def test_event_classes_carry_their_tag():
    assert Compute().tag == T_COMPUTE
    assert Load(buf(), (0,)).tag == T_LOAD
    assert Store(buf(), (0,), (1.0,)).tag == T_STORE
    assert AtomicOp(buf(), 0, "add", 1).tag == T_ATOMIC
    assert SyncWarp(0xF).tag == T_SYNCWARP
    assert SyncBlock().tag == T_SYNCBLOCK
    assert Shuffle("xor", 1.0, 1, 0xF).tag == T_SHUFFLE


def test_compute_defaults():
    c = Compute()
    assert c.kind == "alu" and c.ops == 1


def test_syncblock_defaults_classic():
    s = SyncBlock()
    assert s.bar_id == 0 and s.count is None


def test_reprs_do_not_crash():
    for ev in (
        Compute("fma", 3),
        Load(buf(), (0, 1)),
        Store(buf(), (0,), (1.0,)),
        AtomicOp(buf(), 0, "add", 1),
        SyncWarp(0xFF),
        SyncBlock(1, 32),
        Shuffle("down", 1.0, 2, 0xFF),
    ):
        assert repr(ev)


def test_op_name_constants():
    assert "cas" in ATOMIC_OPS
    assert set(SHUFFLE_MODES) == {"idx", "up", "down", "xor"}


def test_slots_reject_arbitrary_attributes():
    with pytest.raises(AttributeError):
        Compute().foo = 1
