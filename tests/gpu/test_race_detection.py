"""Tests for the data-race detector and device assertions."""

import numpy as np
import pytest

from repro.errors import DataRaceError, DeviceAssertionError


class TestRaceDetection:
    def test_write_write_race_detected(self, device):
        buf = device.alloc("b", 4, np.float64)

        def k(tc, buf):
            yield from tc.store(buf, 0, float(tc.tid))

        with pytest.raises(DataRaceError, match="data race.*'b'\\[0\\]"):
            device.launch(k, 1, 4, args=(buf,), detect_races=True)

    def test_write_read_race_detected(self, device):
        buf = device.alloc("b", 4, np.float64)

        def k(tc, buf):
            if tc.tid == 0:
                yield from tc.store(buf, 1, 5.0)
            else:
                yield from tc.load(buf, 1)

        with pytest.raises(DataRaceError):
            device.launch(k, 1, 2, args=(buf,), detect_races=True)

    def test_atomic_plain_write_race_detected(self, device):
        buf = device.alloc("b", 4, np.float64)

        def k(tc, buf):
            if tc.tid == 0:
                yield from tc.store(buf, 0, 1.0)
            else:
                yield from tc.atomic_add(buf, 0, 1.0)

        with pytest.raises(DataRaceError):
            device.launch(k, 1, 2, args=(buf,), detect_races=True)

    def test_all_atomic_contention_is_clean(self, device):
        buf = device.alloc("b", 1, np.float64)

        def k(tc, buf):
            yield from tc.atomic_add(buf, 0, 1.0)

        device.launch(k, 1, 32, args=(buf,), detect_races=True)
        assert buf.read(0) == 32.0

    def test_disjoint_writes_are_clean(self, device):
        buf = device.alloc("b", 32, np.float64)

        def k(tc, buf):
            yield from tc.store(buf, tc.tid, 1.0)
            v = yield from tc.load(buf, tc.tid)
            yield from tc.store(buf, tc.tid, v + 1.0)

        device.launch(k, 1, 32, args=(buf,), detect_races=True)
        assert np.all(buf.to_numpy() == 2.0)

    def test_barrier_separated_accesses_are_clean(self, device):
        buf = device.alloc("b", 1, np.float64)

        def k(tc, buf):
            if tc.tid == 0:
                yield from tc.store(buf, 0, 9.0)
            yield from tc.syncthreads()
            yield from tc.load(buf, 0)

        device.launch(k, 1, 32, args=(buf,), detect_races=True)

    def test_runtime_protocols_are_race_free(self, device):
        """Run a generic-mode three-level kernel under the detector: the
        staging/state-machine protocols must be data-race free."""
        from repro.core import api as omp

        x = device.from_array("x", np.arange(64, dtype=np.float64))
        y = device.from_array("y", np.zeros(64))

        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"base": int(ivs[0]) * 8}

        def body(tc, ivs, view):
            i, j = ivs
            idx = int(view["base"]) + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                8, pre=pre, captures=[("base", "i64")],
                nested=omp.simd(8, body=body), uses=(),
            )
        )
        omp.launch(device, tree, num_teams=2, team_size=32, simd_len=8,
                   args={"x": x, "y": y}, detect_races=True)
        assert np.array_equal(y.to_numpy(), np.arange(64) + 1.0)

    @pytest.mark.parametrize("shape", ["generic_teams", "dynamic", "reduction"])
    def test_more_protocols_race_free(self, device, shape):
        """Team staging, dynamic claims, and reductions under the detector."""
        from repro.core import api as omp

        x = device.from_array("x", np.arange(64, dtype=np.float64))
        y = device.from_array("y", np.zeros(64))
        args = {"x": x, "y": y}

        def element(tc, ivs, view):
            i, j = ivs[-2], ivs[-1]
            idx = i * 8 + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        if shape == "generic_teams":
            tree = omp.target(
                omp.teams_distribute(8, nested=omp.parallel_for(8, body=element))
            )
            expect = np.arange(64) + 1.0
        elif shape == "dynamic":
            tree = omp.target(
                omp.teams_distribute_parallel_for(
                    8, nested=omp.simd(8, body=element), schedule="dynamic",
                )
            )
            expect = np.arange(64) + 1.0
        else:  # reduction
            def value_body(tc, ivs, view):
                i, j = ivs
                v = yield from tc.load(view["x"], i * 8 + j)
                return float(v)

            def finalize(tc, ivs, view, total):
                (i,) = ivs
                yield from tc.store(view["y"], i, total)

            tree = omp.target(
                omp.teams_distribute_parallel_for(
                    8,
                    nested=omp.simd(
                        omp.loop(8, body=value_body, uses=("x",)),
                        reduction=("add", finalize),
                    ),
                    uses=("y",),
                )
            )
            expect = np.zeros(64)
            expect[:8] = np.arange(64).reshape(8, 8).sum(axis=1)
        omp.launch(device, tree, num_teams=2, team_size=32, simd_len=8,
                   args=args, detect_races=True)
        assert np.allclose(y.to_numpy(), expect)

    def test_detector_off_by_default(self, device):
        buf = device.alloc("b", 1, np.float64)

        def k(tc, buf):
            yield from tc.store(buf, 0, float(tc.tid))

        device.launch(k, 1, 4, args=(buf,))  # racy but undetected
        assert buf.read(0) == 3.0  # last lane in deterministic order


class TestDeviceAssert:
    def test_passing_assert_is_silent(self, device):
        def k(tc):
            yield from tc.device_assert(tc.tid < 32, "tid in range")

        device.launch(k, 1, 32)

    def test_failing_assert_names_thread(self, device):
        def k(tc):
            yield from tc.device_assert(tc.tid != 3, "boom")

        with pytest.raises(DeviceAssertionError, match=r"boom \(block 0, thread 3\)"):
            device.launch(k, 1, 32)
