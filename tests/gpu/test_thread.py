"""Unit tests for ThreadCtx identity and helper coverage."""

import numpy as np
import pytest

from repro.gpu.thread import DONE, RUN, Lane, ThreadCtx, full_mask


class TestIdentity:
    def test_lane_and_warp_decomposition(self):
        tc = ThreadCtx(tid=70, warp_size=32, block_id=3, num_blocks=8,
                       block_dim=128, block=None)
        assert tc.warp_id == 2
        assert tc.lane_id == 6
        assert tc.global_tid == 3 * 128 + 70

    def test_warp_mask(self):
        tc = ThreadCtx(0, 32, 0, 1, 32, None)
        assert tc.warp_mask() == (1 << 32) - 1

    def test_full_mask_amd_width(self):
        assert full_mask(64) == (1 << 64) - 1

    def test_rt_slot_defaults_none(self):
        tc = ThreadCtx(0, 32, 0, 1, 32, None)
        assert tc.rt is None


class TestAlloca:
    def test_alloca_is_lane_private_name(self):
        tc = ThreadCtx(5, 32, 0, 1, 32, None)
        buf = tc.alloca("tmp", 4, np.float64)
        assert buf.space == "local"
        assert "t5" in buf.name


class TestLaneBookkeeping:
    def test_describe(self):
        lane = Lane(3, 0, 3, iter([]))
        assert "t3" in lane.describe()
        lane.state = DONE
        assert "retired" in lane.describe()


class TestTracer:
    def test_tracer_sees_every_event(self, device):
        x = device.from_array("x", np.zeros(32))
        seen = []

        def k(tc, x):
            yield from tc.compute("alu")
            yield from tc.store(x, tc.tid, 1.0)

        device.launch(k, 1, 32, args=(x,), tracer=lambda b, r, t, ev: seen.append((r, t, ev.tag)))
        from repro.gpu.events import T_COMPUTE, T_STORE

        assert len(seen) == 64
        assert {tag for _, _, tag in seen} == {T_COMPUTE, T_STORE}
        # Rounds are ordered: all computes in round 0, stores in round 1.
        assert all(r == 0 for r, _, tag in seen if tag == T_COMPUTE)
        assert all(r == 1 for r, _, tag in seen if tag == T_STORE)
