"""Unit tests for device memory: buffers, global allocator, shared memory."""

import numpy as np
import pytest

from repro.errors import AllocationError, MemoryFault
from repro.gpu.memory import (
    GLOBAL_ALIGN,
    Buffer,
    GlobalMemory,
    SharedMemory,
    local_buffer,
)


class TestBuffer:
    def test_basic_read_write(self):
        buf = Buffer("b", "global", 4, np.float64)
        buf.write(2, 3.5)
        assert buf.read(2) == 3.5
        assert buf.read(0) == 0.0

    def test_out_of_bounds_read(self):
        buf = Buffer("b", "global", 4, np.float64)
        with pytest.raises(MemoryFault, match="out of bounds"):
            buf.read(4)

    def test_out_of_bounds_negative(self):
        buf = Buffer("b", "global", 4, np.float64)
        with pytest.raises(MemoryFault):
            buf.write(-1, 0.0)

    def test_unknown_space_rejected(self):
        with pytest.raises(ValueError, match="unknown memory space"):
            Buffer("b", "texture", 4, np.float64)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Buffer("b", "global", -1, np.float64)

    def test_byte_address_uses_itemsize(self):
        buf = Buffer("b", "global", 8, np.float32, base=256)
        assert buf.byte_address(0) == 256
        assert buf.byte_address(3) == 256 + 3 * 4

    def test_backing_array_shared(self):
        host = np.arange(6, dtype=np.int64)
        buf = Buffer("b", "global", 6, np.int64, data=host)
        buf.write(0, 99)
        assert host[0] == 99

    def test_backing_array_size_mismatch(self):
        with pytest.raises(ValueError, match="elements"):
            Buffer("b", "global", 4, np.int64, data=np.zeros(5, dtype=np.int64))

    def test_backing_array_dtype_mismatch(self):
        with pytest.raises(ValueError, match="dtype"):
            Buffer("b", "global", 4, np.int64, data=np.zeros(4, dtype=np.float64))

    def test_to_numpy_is_a_copy(self):
        buf = Buffer("b", "global", 3, np.float64)
        out = buf.to_numpy()
        out[0] = 42.0
        assert buf.read(0) == 0.0

    def test_fill_from(self):
        buf = Buffer("b", "global", 3, np.float64)
        buf.fill_from([1.0, 2.0, 3.0])
        assert buf.read(1) == 2.0

    def test_fill_from_size_mismatch(self):
        buf = Buffer("b", "global", 3, np.float64)
        with pytest.raises(ValueError):
            buf.fill_from([1.0, 2.0])

    def test_nbytes(self):
        assert Buffer("b", "global", 10, np.float64).nbytes == 80


class TestGlobalMemory:
    def test_alloc_assigns_disjoint_ranges(self):
        g = GlobalMemory()
        a = g.alloc("a", 100, np.float64)
        b = g.alloc("b", 100, np.float64)
        assert a.base % GLOBAL_ALIGN == 0
        assert b.base >= a.base + a.nbytes

    def test_null_address_reserved(self):
        g = GlobalMemory()
        a = g.alloc("a", 1, np.uint8)
        assert a.base > 0

    def test_handles_resolve(self):
        g = GlobalMemory()
        a = g.alloc("a", 4, np.int64)
        assert g.lookup(a.handle) is a

    def test_null_handle_faults(self):
        g = GlobalMemory()
        with pytest.raises(MemoryFault, match="handle"):
            g.lookup(0)

    def test_free_invalidates_handle(self):
        g = GlobalMemory()
        a = g.alloc("a", 4, np.int64)
        g.free(a)
        with pytest.raises(MemoryFault):
            g.lookup(a.handle)

    def test_double_free_faults(self):
        g = GlobalMemory()
        a = g.alloc("a", 4, np.int64)
        g.free(a)
        with pytest.raises(MemoryFault, match="double free"):
            g.free(a)

    def test_live_bytes_accounting(self):
        g = GlobalMemory()
        a = g.alloc("a", 10, np.float64)
        b = g.alloc("b", 10, np.float64)
        assert g.live_bytes == 160
        g.free(a)
        assert g.live_bytes == 80
        assert g.peak_bytes == 160

    def test_capacity_exhaustion(self):
        g = GlobalMemory(capacity=1024)
        with pytest.raises(AllocationError, match="exhausted"):
            g.alloc("big", 1024, np.float64)

    def test_from_array_roundtrip(self):
        g = GlobalMemory()
        host = np.linspace(0, 1, 17)
        buf = g.from_array("x", host)
        assert np.array_equal(buf.to_numpy(), host)

    def test_scalar_box(self):
        g = GlobalMemory()
        s = g.scalar("s", 3.25)
        assert s.size == 1
        assert s.read(0) == 3.25

    def test_scalar_with_dtype(self):
        g = GlobalMemory()
        s = g.scalar("s", 7, dtype=np.int32)
        assert s.dtype == np.dtype(np.int32)

    def test_register_foreign_buffer(self):
        g = GlobalMemory()
        shared = Buffer("sh", "shared", 4, np.uint64)
        h = g.register(shared)
        assert h != 0
        assert g.lookup(h) is shared

    def test_register_idempotent(self):
        g = GlobalMemory()
        shared = Buffer("sh", "shared", 4, np.uint64)
        assert g.register(shared) == g.register(shared)

    def test_alloc_free_counters(self):
        g = GlobalMemory()
        a = g.alloc("a", 1, np.uint8)
        g.free(a)
        assert g.alloc_count == 1
        assert g.free_count == 1


class TestSharedMemory:
    def test_bump_allocation(self):
        sh = SharedMemory(capacity=1024)
        a = sh.alloc("a", 16, np.float64)
        b = sh.alloc("b", 16, np.float64)
        assert a.space == "shared"
        assert b.base >= a.base + a.nbytes
        assert sh.used == b.base + b.nbytes

    def test_capacity_enforced(self):
        sh = SharedMemory(capacity=64)
        sh.alloc("a", 8, np.float64)
        with pytest.raises(AllocationError, match="shared memory exhausted"):
            sh.alloc("b", 1, np.float64)

    def test_reset_rewinds(self):
        sh = SharedMemory(capacity=64)
        sh.alloc("a", 8, np.float64)
        sh.reset()
        assert sh.used == 0
        sh.alloc("b", 8, np.float64)  # fits again

    def test_remaining(self):
        sh = SharedMemory(capacity=100)
        sh.alloc("a", 10, np.uint8)
        assert sh.remaining == 100 - sh.used

    def test_alignment(self):
        sh = SharedMemory(capacity=128)
        sh.alloc("a", 3, np.uint8)
        b = sh.alloc("b", 1, np.float64)
        assert b.base % 8 == 0


def test_local_buffer():
    buf = local_buffer("tmp", 4, np.float64)
    assert buf.space == "local"
    buf.write(0, 1.5)
    assert buf.read(0) == 1.5
