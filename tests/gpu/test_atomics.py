"""Unit tests for atomic semantics (scheduler-side apply function)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.atomics import apply_atomic
from repro.gpu.memory import Buffer


def make_buf(value=0):
    buf = Buffer("b", "global", 4, np.int64)
    buf.write(0, value)
    return buf


def test_add_returns_old():
    buf = make_buf(10)
    assert apply_atomic(buf, 0, "add", 5) == 10
    assert buf.read(0) == 15


def test_max():
    buf = make_buf(10)
    apply_atomic(buf, 0, "max", 3)
    assert buf.read(0) == 10
    apply_atomic(buf, 0, "max", 30)
    assert buf.read(0) == 30


def test_min():
    buf = make_buf(10)
    apply_atomic(buf, 0, "min", 30)
    assert buf.read(0) == 10
    apply_atomic(buf, 0, "min", 3)
    assert buf.read(0) == 3


def test_exch():
    buf = make_buf(1)
    assert apply_atomic(buf, 0, "exch", 99) == 1
    assert buf.read(0) == 99


def test_cas_success_and_failure():
    buf = make_buf(5)
    assert apply_atomic(buf, 0, "cas", (5, 7)) == 5
    assert buf.read(0) == 7
    assert apply_atomic(buf, 0, "cas", (5, 9)) == 7
    assert buf.read(0) == 7  # compare failed, unchanged


def test_unknown_op():
    with pytest.raises(SimulationError, match="unknown atomic op"):
        apply_atomic(make_buf(), 0, "xor", 1)


def test_bounds_checked():
    from repro.errors import MemoryFault

    with pytest.raises(MemoryFault):
        apply_atomic(make_buf(), 99, "add", 1)
