"""Unit tests for occupancy limits and wave/kernel cycle composition."""

import pytest

from repro.errors import LaunchError
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.counters import BlockCounters
from repro.gpu.sm import blocks_per_sm, compose_kernel_cycles, sm_cycles, wave_cycles


def block(rounds=0, issue=0.0, mem=0.0, sync=0.0, mem_serial=0):
    b = BlockCounters()
    b.rounds = rounds
    b.issue_cycles = issue
    b.mem_cycles = mem
    b.sync_cycles = sync
    b.mem_serial_rounds = mem_serial
    return b


class TestOccupancy:
    def test_warp_limit(self):
        p = nvidia_a100()
        # 1024-thread blocks = 32 warps; 64 warps per SM -> 2 blocks.
        assert blocks_per_sm(p, 1024, 0) == 2

    def test_block_limit(self):
        p = nvidia_a100()
        assert blocks_per_sm(p, 32, 0) == p.max_blocks_per_sm

    def test_shared_memory_limit(self):
        p = nvidia_a100()
        assert blocks_per_sm(p, 32, p.shared_mem_per_sm // 4) == 4

    def test_shared_memory_overflow(self):
        p = nvidia_a100()
        with pytest.raises(LaunchError, match="shared memory"):
            blocks_per_sm(p, 32, p.shared_mem_per_sm + 1)

    def test_register_limit(self):
        p = nvidia_a100()
        # 128 regs x 128 threads = 16K regs -> 64K/16K = 4 blocks.
        assert blocks_per_sm(p, 128, 0, regs_per_thread=128) == 4

    def test_register_limit_never_below_one(self):
        p = nvidia_a100()
        assert blocks_per_sm(p, 1024, 0, regs_per_thread=255) == 1

    def test_invalid_threads(self):
        with pytest.raises(LaunchError):
            blocks_per_sm(nvidia_a100(), 0, 0)


class TestWaveCycles:
    def test_empty_wave(self):
        assert wave_cycles(nvidia_a100(), []) == 0.0

    def test_critical_path_dominates(self):
        p = nvidia_a100()
        w = [block(rounds=1000)]
        assert wave_cycles(p, w) == 1000 * p.round_latency

    def test_mem_latency_term(self):
        p = nvidia_a100()
        w = [block(rounds=10, mem_serial=5)]
        assert wave_cycles(p, w) == 10 * p.round_latency + 5 * p.mem_latency_cycles

    def test_issue_throughput_sums_over_blocks(self):
        p = nvidia_a100()
        w = [block(issue=4000.0), block(issue=4000.0)]
        assert wave_cycles(p, w) == 8000.0 / p.issue_width

    def test_memory_throughput_sums(self):
        p = nvidia_a100()
        w = [block(mem=500.0), block(mem=700.0)]
        assert wave_cycles(p, w) == 1200.0

    def test_sync_added_on_top(self):
        p = nvidia_a100()
        w = [block(rounds=100, sync=50.0)]
        assert wave_cycles(p, w) == 100 * p.round_latency + 50.0

    def test_max_of_terms(self):
        p = nvidia_a100()
        w = [block(rounds=10, issue=100000.0, mem=3.0)]
        assert wave_cycles(p, w) == 100000.0 / p.issue_width


class TestComposition:
    def test_single_block_single_sm(self):
        p = nvidia_a100()
        cycles, resident, waves = compose_kernel_cycles(p, [block(rounds=10)], 32, 0)
        assert cycles == 10 * p.round_latency
        assert waves == 1

    def test_waves_split_by_residency(self):
        p = nvidia_a100().with_overrides(num_sms=1, max_blocks_per_sm=2)
        blocks = [block(rounds=10) for _ in range(4)]
        cycles, resident, waves = compose_kernel_cycles(p, blocks, 32, 0)
        assert resident == 2
        assert waves == 2
        assert cycles == 2 * (10 * p.round_latency)

    def test_kernel_time_is_slowest_sm(self):
        p = nvidia_a100().with_overrides(num_sms=2)
        blocks = [block(rounds=10), block(rounds=100), block(rounds=10)]
        # Round-robin: SM0 gets blocks 0 and 2, SM1 gets block 1.
        cycles, _, _ = compose_kernel_cycles(p, blocks, 32, 0)
        assert cycles == 100 * p.round_latency  # SM1's lone slow block wins
        assert cycles > wave_cycles(p, [blocks[0], blocks[2]])

    def test_sm_cycles_sums_waves(self):
        p = nvidia_a100()
        blocks = [block(rounds=5), block(rounds=7)]
        assert sm_cycles(p, blocks, resident=1) == (5 + 7) * p.round_latency

    def test_register_pressure_reduces_occupancy_increases_time(self):
        p = nvidia_a100().with_overrides(num_sms=1)
        blocks = [block(rounds=10) for _ in range(8)]
        lo, _, _ = compose_kernel_cycles(p, blocks, 128, 0, regs_per_thread=32)
        hi, _, _ = compose_kernel_cycles(p, blocks, 128, 0, regs_per_thread=255)
        assert hi > lo
