"""Tests for warp shuffles: resolver semantics and on-device behaviour."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SynchronizationError
from repro.gpu.shuffle import resolve_shuffles


class TestResolver:
    def setup_method(self):
        self.lanes = [0, 1, 2, 3]
        self.values = {l: l * 10 for l in self.lanes}

    def test_idx_mode(self):
        out = resolve_shuffles("idx", self.lanes, self.values, {l: 2 for l in self.lanes})
        assert all(out[l] == 20 for l in self.lanes)

    def test_down_mode(self):
        out = resolve_shuffles("down", self.lanes, self.values, {l: 1 for l in self.lanes})
        assert out[0] == 10 and out[2] == 30
        assert out[3] == 30  # out of segment: own value

    def test_up_mode(self):
        out = resolve_shuffles("up", self.lanes, self.values, {l: 2 for l in self.lanes})
        assert out[2] == 0 and out[3] == 10
        assert out[0] == 0  # own value

    def test_xor_mode(self):
        out = resolve_shuffles("xor", self.lanes, self.values, {l: 1 for l in self.lanes})
        assert out[0] == 10 and out[1] == 0 and out[2] == 30 and out[3] == 20

    def test_segment_relative_lanes(self):
        """Non-contiguous masks behave as compact segments."""
        lanes = [8, 9, 10, 11]
        values = {l: l for l in lanes}
        out = resolve_shuffles("down", lanes, values, {l: 1 for l in lanes})
        assert out[8] == 9 and out[11] == 11

    def test_unknown_mode(self):
        with pytest.raises(SynchronizationError, match="shuffle mode"):
            resolve_shuffles("rotate", [0], {0: 1}, {0: 0})

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=15))
    def test_idx_reads_are_permutation_lookups(self, src, seed):
        lanes = list(range(8))
        values = {l: (l * 7 + seed) % 13 for l in lanes}
        out = resolve_shuffles("idx", lanes, values, {l: src for l in lanes})
        assert all(out[l] == values[src] for l in lanes)


class TestOnDevice:
    def test_butterfly_sum_full_warp(self, device):
        out = device.alloc("o", 32, np.float64)

        def k(tc, out):
            v = float(tc.lane_id)
            d = 16
            while d >= 1:
                other = yield from tc.shfl_xor(v, d)
                v += other
                d //= 2
            yield from tc.store(out, tc.lane_id, v)

        device.launch(k, 1, 32, args=(out,))
        assert np.all(out.to_numpy() == sum(range(32)))

    def test_shfl_idx_broadcast(self, device):
        out = device.alloc("o", 32, np.float64)

        def k(tc, out):
            v = yield from tc.shfl(float(tc.lane_id), 5)
            yield from tc.store(out, tc.lane_id, v)

        device.launch(k, 1, 32, args=(out,))
        assert np.all(out.to_numpy() == 5.0)

    def test_subgroup_shuffles_are_independent(self, device):
        """Two 16-lane segments shuffle without crosstalk."""
        out = device.alloc("o", 32, np.float64)

        def k(tc, out):
            seg = tc.lane_id // 16
            mask = 0xFFFF << (16 * seg)
            v = yield from tc.shfl(float(tc.lane_id), 0, mask)
            yield from tc.store(out, tc.lane_id, v)

        device.launch(k, 1, 32, args=(out,))
        expect = np.repeat([0.0, 16.0], 16)
        assert np.array_equal(out.to_numpy(), expect)

    def test_shuffle_with_retired_lane_deadlocks(self, device):
        from repro.errors import DeadlockError

        def k(tc):
            if tc.lane_id == 7:
                return
                yield
            yield from tc.shfl_xor(1.0, 1)

        with pytest.raises(DeadlockError):
            device.launch(k, 1, 32)

    def test_shfl_up_down_chain(self, device):
        out = device.alloc("o", 32, np.float64)

        def k(tc, out):
            down = yield from tc.shfl_down(float(tc.lane_id), 1)
            up = yield from tc.shfl_up(float(tc.lane_id), 1)
            yield from tc.store(out, tc.lane_id, down - up)

        device.launch(k, 1, 32, args=(out,))
        res = out.to_numpy()
        assert res[1] == (2.0 - 0.0)
        assert res[0] == 1.0  # down=1, up=own(0)
        assert res[31] == 31.0 - 30.0
