"""Tests for the trace recorder and Chrome-trace export."""

import json

import numpy as np
import pytest

from repro.gpu.tracing import TraceRecorder


def run_traced(device, recorder, blocks=2, threads=32):
    x = device.from_array("x", np.zeros(64))

    def k(tc, x):
        yield from tc.compute("alu")
        yield from tc.store(x, tc.tid, 1.0)
        yield from tc.syncthreads()

    device.launch(k, blocks, threads, args=(x,), tracer=recorder)


class TestRecorder:
    def test_records_all_events(self, device):
        rec = TraceRecorder()
        run_traced(device, rec)
        assert len(rec) == 2 * 32 * 3
        assert rec.summary() == {"compute": 64, "store": 64, "syncblock": 64}

    def test_for_thread_timeline_in_order(self, device):
        rec = TraceRecorder()
        run_traced(device, rec)
        timeline = rec.for_thread(1, 5)
        assert [rnd for rnd, _, _ in timeline] == [0, 1, 2]
        assert [label.split()[0] for _, _, label in timeline] == [
            "compute", "store", "syncblock",
        ]

    def test_event_cap_drops_and_counts(self, device):
        rec = TraceRecorder(max_events=10)
        run_traced(device, rec)
        assert len(rec) == 10
        assert rec.summary()["dropped"] == 2 * 32 * 3 - 10


class TestChromeExport:
    def test_export_structure(self, device):
        rec = TraceRecorder()
        run_traced(device, rec)
        events = rec.to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["pid"] for m in meta} == {0, 1}
        complete = [e for e in events if e["ph"] == "X"]
        assert all({"name", "ts", "dur", "pid", "tid"} <= set(e) for e in complete)

    def test_save_valid_json(self, device, tmp_path):
        rec = TraceRecorder()
        run_traced(device, rec)
        path = tmp_path / "trace.json"
        rec.save(str(path))
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert len(data["traceEvents"]) > 0
