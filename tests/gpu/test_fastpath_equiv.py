"""Differential suite: the three round engines, bit for bit.

The fast interpreter and the trace-compiling JIT (``docs/PERF.md``) are
only legal because they are *observationally identical* to the
instrumented engine: same memory state, same
:class:`~repro.gpu.counters.KernelCounters`, same errors with the same
messages.  This suite proves that claim by running the same kernels
under every engine — randomized programs mixing every event type plus
directed kernels targeting each engine's seams (partial same-round
arrivals, sub-mask groups, counted barriers, faulting accesses, and
every JIT deoptimization reason) — and comparing everything.

JIT launches additionally report ``engine``/``jit_*`` telemetry keys in
``kc.extra``; :func:`_strip_jit_extras` removes exactly those before the
``identical()`` oracle runs, so the comparison still covers every
architectural counter.

Runs under every executor in the CI matrix via the ``executor`` fixture,
so the parallel block-sharding engine's worker processes (which inherit
the engine selection) get the same differential coverage.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import DeadlockError, LaunchError, MemoryFault
from repro.gpu.costmodel import amd_mi100, nvidia_a100
from repro.gpu.device import Device

ENGINES = ["fast", "jit"]  # each diffed against the instrumented baseline


def _strip_jit_extras(kc):
    """Drop the JIT telemetry keys (and only those) from ``kc.extra``."""
    kc.extra.pop("engine", None)
    for key in [k for k in kc.extra if k.startswith("jit_")]:
        del kc.extra[key]
    return kc


# ---------------------------------------------------------------------------
# Random program generator.
#
# A program is a seeded list of generator closures; every lane runs the same
# program, with divergence, masks, and addresses derived from lane/thread
# ids.  Global stores stay inside a block-private slice of ``w`` so kernels
# remain well-formed (race-free) under any block execution order.


def _op_compute(rng):
    kind = rng.choice(["alu", "fma", "sfu", "branch"])
    ops = rng.randint(1, 4)

    def op(tc, b, total):
        yield from tc.compute(kind, ops)
        return total + 1.0

    return op


def _op_divergent_compute(rng):
    k1 = rng.choice(["alu", "fma"])
    k2 = rng.choice(["sfu", "branch"])
    mod = rng.choice([2, 3, 5])

    def op(tc, b, total):
        if tc.lane_id % mod == 0:
            yield from tc.compute(k1, 2)
        else:
            yield from tc.compute(k2)
        return total + 0.5

    return op


def _op_load(rng):
    mult = rng.choice([1, 3, 5])
    off = rng.randint(0, 63)

    def op(tc, b, total):
        v = yield from tc.load(b["x"], (tc.global_tid * mult + off) % b["n"])
        return total + v

    return op


def _op_load_vec(rng):
    off = rng.randint(0, 31)

    def op(tc, b, total):
        g = tc.global_tid * 2 + off
        vs = yield from tc.load_vec(b["x"], [g % b["n"], (g + 1) % b["n"]])
        return total + vs[0] - vs[1]

    return op


def _op_store(rng):
    mult = rng.choice([1, 3, 5])  # odd: bijective over the pow-2 slice
    off = rng.randint(0, 63)

    def op(tc, b, total):
        size = 2 * tc.block_dim
        base = tc.block_id * size
        yield from tc.store(b["w"], base + (tc.tid * mult + off) % size, total)
        return total

    return op


def _op_store_vec(rng):
    def op(tc, b, total):
        base = tc.block_id * 2 * tc.block_dim
        i = base + 2 * tc.tid
        yield from tc.store_vec(b["w"], [i, i + 1], [total, -total])
        return total

    return op


def _op_atomic(rng):
    mode = rng.choice(["add", "max", "min", "exch"])
    idx = rng.randint(0, 3)
    val = rng.randint(1, 9)

    def op(tc, b, total):
        fn = getattr(tc, f"atomic_{mode}")
        old = yield from fn(b["acc"], idx, val)
        return total + float(old % 13)

    return op


def _op_shuffle(rng):
    mode = rng.choice(["down", "up", "xor", "idx"])
    delta = rng.randint(1, 7)

    def op(tc, b, total):
        if mode == "idx":
            s = yield from tc.shfl(total, delta)
        else:
            fn = getattr(tc, f"shfl_{mode}")
            s = yield from fn(total, delta)
        return total + (0.0 if s is None else s * 0.125)

    return op


def _op_shuffle_submask(rng):
    delta = rng.randint(1, 3)

    def op(tc, b, total):
        half = tc.warp_size // 2
        m = (1 << half) - 1
        if tc.lane_id < half:
            s = yield from tc.shfl_down(total, delta, m)
            return total + (0.0 if s is None else s)
        yield from tc.compute("alu")
        return total

    return op


def _op_vote(rng):
    mode = rng.choice(["any", "all", "ballot"])
    mod = rng.choice([2, 3, 7])

    def op(tc, b, total):
        pred = tc.lane_id % mod == 0
        if mode == "ballot":
            r = yield from tc.ballot(pred)
            return total + (r % 97)
        fn = getattr(tc, f"vote_{mode}")
        r = yield from fn(pred)
        return total + (1.0 if r else -1.0)

    return op


def _op_syncwarp(rng):
    def op(tc, b, total):
        yield from tc.syncwarp()
        return total

    return op


def _op_syncwarp_submask(rng):
    def op(tc, b, total):
        half = tc.warp_size // 2
        if tc.lane_id < half:
            yield from tc.syncwarp((1 << half) - 1)
        else:
            yield from tc.compute("fma")
        return total

    return op


def _op_bar(rng):
    def op(tc, b, total):
        yield from tc.syncthreads()
        return total

    return op


def _op_counted_bar(rng):
    def op(tc, b, total):
        count = tc.block_dim // 2
        if tc.tid < count:
            yield from tc.syncthreads(bar_id=1, count=count)
        else:
            yield from tc.compute("alu", 2)
        return total

    return op


def _op_skewed_collective(rng):
    """Lanes reach a collective in different rounds: exercises the fast
    engine's migration from inline same-round completion to the parked
    waiter path."""
    which = rng.choice(["bar", "syncwarp", "shfl"])
    mod = rng.choice([2, 3])

    def op(tc, b, total):
        for _ in range(tc.lane_id % mod):
            yield from tc.compute("alu")
        if which == "bar":
            yield from tc.syncthreads()
        elif which == "syncwarp":
            yield from tc.syncwarp()
        else:
            s = yield from tc.shfl_xor(total, 1)
            total += 0.0 if s is None else s
        return total

    return op


def _op_shared_tile(rng):
    d = rng.randint(1, 5)

    def op(tc, b, total):
        sh = b["cells"].get(tc.block_id)
        if sh is None:
            yield from tc.compute("alu")
            return total
        yield from tc.store(sh, tc.tid, total)
        yield from tc.syncthreads()
        v = yield from tc.load(sh, (tc.tid + d) % tc.block_dim)
        yield from tc.syncthreads()
        return total + v * 0.5

    return op


def _op_coalesced_stream(rng):
    """A straight-line vectorizable stretch — the shape the JIT compiles.
    Mixed into the soup it exercises the boundary where a trace stays
    stable for a while before another op forces a deopt."""
    scale = rng.choice([0.5, 2.0, 4.0])

    def op(tc, b, total):
        v = yield from tc.load(b["x"], tc.global_tid)
        yield from tc.compute("fma", 2)
        base = tc.block_id * 2 * tc.block_dim
        yield from tc.store(b["w"], base + tc.tid, v * scale + total)
        return total + 0.25

    return op


_OP_MAKERS = [
    _op_compute,
    _op_divergent_compute,
    _op_load,
    _op_load_vec,
    _op_store,
    _op_store_vec,
    _op_atomic,
    _op_shuffle,
    _op_shuffle_submask,
    _op_vote,
    _op_syncwarp,
    _op_syncwarp_submask,
    _op_bar,
    _op_counted_bar,
    _op_skewed_collective,
    _op_shared_tile,
    _op_coalesced_stream,
]


def _run_random_kernel(seed, executor, params, engine, blocks=2, threads=64):
    """Build the seed's program on a fresh device and run it under one engine."""
    rng = random.Random(seed)
    prog = [rng.choice(_OP_MAKERS)(rng) for _ in range(rng.randint(10, 18))]
    use_shared = rng.random() < 0.75

    dev = Device(params, executor=executor)
    t = blocks * threads
    n = 2 * t
    x = dev.from_array("x", np.arange(n, dtype=np.float64) * 0.25 - 7.0)
    w = dev.from_array("w", np.zeros(n))
    acc = dev.alloc("acc", 4, np.int64)
    cells: dict = {}
    bufs = {"x": x, "w": w, "acc": acc, "cells": cells, "n": n}

    def k(tc, x, w, acc):
        if use_shared:
            if tc.tid == 0:
                cells[tc.block_id] = tc.shared_alloc(
                    "tile", tc.block_dim, np.float64
                )
            yield from tc.syncthreads()
        total = float(tc.global_tid) * 0.25
        for op in prog:
            total = yield from op(tc, bufs, total)
        size = 2 * tc.block_dim
        yield from tc.store(w, tc.block_id * size + tc.tid, total)

    kc = dev.launch(k, blocks, threads, args=(x, w, acc), engine=engine)
    return kc, x.to_numpy(), w.to_numpy(), acc.data.copy()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(10))
def test_random_kernels_bit_identical(executor, seed, engine):
    """Random event soup: memory, counters, and atomics match bit-for-bit."""
    ke, xe, we, ae = _run_random_kernel(seed, executor, nvidia_a100(), engine)
    ki, xi, wi, ai = _run_random_kernel(seed, executor, nvidia_a100(), "instrumented")
    assert _strip_jit_extras(ke).identical(ki), f"seed {seed}: counters diverged"
    assert np.array_equal(xe, xi)
    assert np.array_equal(we, wi)
    assert np.array_equal(ae, ai)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(10, 15))
def test_random_kernels_bit_identical_amd(executor, seed, engine):
    """Same differential property on 64-wide wavefronts."""
    ke, xe, we, ae = _run_random_kernel(seed, executor, amd_mi100(), engine)
    ki, xi, wi, ai = _run_random_kernel(seed, executor, amd_mi100(), "instrumented")
    assert _strip_jit_extras(ke).identical(ki), f"seed {seed}: counters diverged"
    assert np.array_equal(we, wi)
    assert np.array_equal(ae, ai)


# ---------------------------------------------------------------------------
# Directed JIT compilation and deoptimization coverage


def _run_streaming(executor, engine, threads=64):
    dev = Device(nvidia_a100(), executor=executor)
    n = 4 * threads
    x = dev.from_array("x", np.arange(n, dtype=np.float32))
    y = dev.alloc("y", n, np.float32)

    def k(tc, x, y, n):
        i = tc.global_tid
        stride = tc.num_blocks * tc.block_dim
        while i < n:
            v = yield from tc.load(x, i)
            yield from tc.compute("fma", 1)
            yield from tc.store(y, i, v * 2.0 + 1.0)
            i += stride

    kc = dev.launch(k, 2, threads, args=(x, y, n), engine=engine)
    return kc, y.to_numpy()


def test_jit_compiles_streaming_kernel(executor):
    """A convergent grid-stride stream compiles: every warp goes scripted,
    the launch reports it, and the results stay bit-identical."""
    kj, yj = _run_streaming(executor, "jit")
    ki, yi = _run_streaming(executor, "instrumented")
    assert kj.extra["engine"] == "jit"
    assert kj.extra["jit_warps_compiled"] == 4.0  # 2 blocks x 2 warps
    assert np.array_equal(yj, yi)
    assert _strip_jit_extras(kj).identical(ki)


def test_non_jit_launch_has_no_jit_extras(executor):
    """Counters from instrumented/fast launches carry no engine telemetry —
    they stay bit-identical to pre-JIT baselines."""
    for engine in ("instrumented", "fast"):
        kc, _ = _run_streaming(executor, engine)
        assert "engine" not in kc.extra
        assert not any(key.startswith("jit_") for key in kc.extra)


# Each deopt reason gets its own kernel *function* below: the trace-verdict
# cache keys on the entry's code object, so sharing one closure across
# reasons would replay the first-seen verdict instead of exercising each
# guard.


def _deopt_divergence(dev):
    x = dev.from_array("x", np.arange(128, dtype=np.float64))
    w = dev.alloc("w", 128, np.float64)

    def k(tc, x, w):
        if tc.lane_id % 2 == 0:  # data-dependent branch: non-uniform
            yield from tc.compute("alu")
        else:
            yield from tc.compute("fma")
        v = yield from tc.load(x, tc.global_tid)
        yield from tc.store(w, tc.global_tid, v + 1.0)

    return k, (x, w), [w]


def _deopt_event(dev):
    x = dev.from_array("x", np.arange(128, dtype=np.float64))
    w = dev.alloc("w", 128, np.float64)
    acc = dev.alloc("acc", 4, np.int64)

    def k(tc, x, w, acc):
        old = yield from tc.atomic_add(acc, 0, 1)  # unsupported event kind
        yield from tc.store(w, tc.global_tid, float(old % 7))

    return k, (x, w, acc), [w, acc]


def _deopt_alloc(dev):
    w = dev.alloc("w", 128, np.float64)

    def k(tc, w):
        tmp = tc.alloca("tmp", 2, np.float64)  # dynamic allocation
        yield from tc.store(tmp, 0, tc.tid * 1.0)
        v = yield from tc.load(tmp, 0)
        yield from tc.store(w, tc.global_tid, v * 2.0)

    return k, (w,), [w]


def _deopt_dependence(dev):
    w = dev.alloc("w", 128, np.float64)

    def k(tc, w):
        yield from tc.store(w, tc.global_tid, 2.0)
        v = yield from tc.load(w, tc.global_tid)  # reads own earlier store
        yield from tc.store(w, tc.global_tid + 64, v + 1.0)

    return k, (w,), [w]


def _deopt_isolation(dev):
    x = dev.from_array("x", np.arange(128, dtype=np.float64))

    def k(tc, x):
        # Warp 0 reads the cells warp 1 stores (all loads land a round
        # before any store, so the interpreters see pre-launch values —
        # but the dry-run cannot prove that and must refuse).
        v = yield from tc.load(x, (tc.global_tid + tc.warp_size) % 128)
        yield from tc.store(x, tc.global_tid, v + 1.0)

    return k, (x,), [x]


_DEOPT_CASES = {
    "divergence": _deopt_divergence,
    "event": _deopt_event,
    "alloc": _deopt_alloc,
    "dependence": _deopt_dependence,
    "isolation": _deopt_isolation,
}


@pytest.mark.parametrize("reason", sorted(_DEOPT_CASES))
def test_jit_deopt_bit_identical(executor, reason):
    """Each guard fires, is reported, and the fallback stays bit-identical."""
    build = _DEOPT_CASES[reason]

    def run(engine):
        dev = Device(nvidia_a100(), executor=executor)
        k, args, bufs = build(dev)
        kc = dev.launch(k, 1, 64, args=args, engine=engine)
        return kc, [b.to_numpy().copy() for b in bufs]

    kj, mj = run("jit")
    ki, mi = run("instrumented")
    assert kj.extra["engine"] == "jit"
    assert kj.extra.get(f"jit_deopt_{reason}", 0) >= 1, (
        f"expected a {reason} deopt, extras: {kj.extra}"
    )
    assert kj.extra.get("jit_warps_compiled", 0) == 0
    for a, b in zip(mj, mi):
        assert np.array_equal(a, b)
    assert _strip_jit_extras(kj).identical(ki)


# ---------------------------------------------------------------------------
# Engine selection and validation


def test_engine_rejects_unknown_name(executor):
    dev = Device(nvidia_a100(), executor=executor)

    def k(tc):
        yield from tc.compute("alu")

    with pytest.raises(LaunchError, match="engine"):
        dev.launch(k, 1, 32, engine="turbo")


def test_engine_and_fastpath_are_exclusive(executor):
    dev = Device(nvidia_a100(), executor=executor)

    def k(tc):
        yield from tc.compute("alu")

    with pytest.raises(LaunchError, match="fastpath"):
        dev.launch(k, 1, 32, engine="fast", fastpath=True)


def test_explicit_jit_with_hook_is_an_error(executor):
    dev = Device(nvidia_a100(), executor=executor)

    def k(tc):
        yield from tc.compute("alu")

    with pytest.raises(LaunchError, match="incompatible"):
        dev.launch(k, 1, 32, detect_races=True, engine="jit")


def test_env_engine_downgrades_silently_under_hook(executor, monkeypatch):
    """A REPRO_ENGINE=jit sweep must not break hook-carrying launches: the
    preference downgrades to instrumented and reports no jit telemetry."""
    monkeypatch.setenv("REPRO_ENGINE", "jit")
    dev = Device(nvidia_a100(), executor=executor)
    w = dev.alloc("w", 32, np.float64)

    def k(tc, w):
        yield from tc.store(w, tc.tid, 1.0)

    kc = dev.launch(k, 1, 32, args=(w,), detect_races=True)
    assert "engine" not in kc.extra
    assert not any(key.startswith("jit_") for key in kc.extra)
    assert np.all(w.to_numpy() == 1.0)


def test_legacy_fastpath_flag_still_selects_engines(executor):
    """fastpath=True/False maps onto the fast/instrumented engines."""
    kt, yt = _run_streaming_legacy(executor, True)
    kf, yf = _run_streaming_legacy(executor, False)
    assert np.array_equal(yt, yf)
    assert kt.identical(kf)
    assert "engine" not in kt.extra and "engine" not in kf.extra


def _run_streaming_legacy(executor, fastpath):
    dev = Device(nvidia_a100(), executor=executor)
    n = 128
    x = dev.from_array("x", np.arange(n, dtype=np.float32))
    y = dev.alloc("y", n, np.float32)

    def k(tc, x, y, n):
        i = tc.global_tid
        stride = tc.num_blocks * tc.block_dim
        while i < n:
            v = yield from tc.load(x, i)
            yield from tc.store(y, i, v * 3.0)
            i += stride

    kc = dev.launch(k, 2, 64, args=(x, y, n), fastpath=fastpath)
    return kc, y.to_numpy()


# ---------------------------------------------------------------------------
# Directed error-behaviour equivalence


def _launch_expect(executor, build, exc, engine):
    """Run ``build``'s kernel expecting ``exc``; return (type, message, mem)."""
    dev = Device(nvidia_a100(), executor=executor)
    k, blocks, threads, args, bufs = build(dev)
    with pytest.raises(exc) as ei:
        dev.launch(k, blocks, threads, args=args, engine=engine)
    return type(ei.value), str(ei.value), [b.to_numpy().copy() for b in bufs]


def _oob_load(dev):
    x = dev.from_array("x", np.zeros(8))

    def k(tc, x):
        yield from tc.compute("alu")
        if tc.tid == 5:
            yield from tc.load(x, 64)
        else:
            yield from tc.compute("fma")

    return k, 1, 32, (x,), [x]


def _oob_store(dev):
    x = dev.from_array("x", np.arange(16, dtype=np.float64))

    def k(tc, x):
        # Lanes before the faulting one commit their stores first — the
        # partial memory state at the fault must match across engines.
        yield from tc.store(x, tc.tid % 16, -1.0)
        if tc.tid == 9:
            yield from tc.store(x, 99, 0.0)

    return k, 1, 32, (x,), [x]


def _oob_vec_load(dev):
    x = dev.from_array("x", np.zeros(8))

    def k(tc, x):
        # Convergent: under the JIT this faults *inside* the compiled
        # script (an 'F' step), not via deopt.
        yield from tc.load_vec(x, [tc.tid % 8, 8 + tc.tid])

    return k, 1, 32, (x,), [x]


def _oob_jit_store(dev):
    x = dev.from_array("x", np.arange(48, dtype=np.float64))

    def k(tc, x):
        # Convergent second store walks off the end: the JIT must commit
        # the exact lane-major prefix before raising.
        yield from tc.store(x, tc.tid, -1.0)
        yield from tc.store(x, tc.tid + 32, -2.0)

    return k, 1, 32, (x,), [x]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "build", [_oob_load, _oob_store, _oob_vec_load, _oob_jit_store]
)
def test_memory_fault_identical(executor, build, engine):
    """Faults carry the same type/message and leave identical memory."""
    te, me, be = _launch_expect(executor, build, MemoryFault, engine)
    ti, mi, bi = _launch_expect(executor, build, MemoryFault, "instrumented")
    assert (te, me) == (ti, mi)
    for a, b in zip(be, bi):
        assert np.array_equal(a, b)


def _retired_lane_deadlock(dev):
    def k(tc):
        if tc.lane_id < 16:
            return  # retire: the full-mask group below can never complete
            yield
        yield from tc.syncwarp()

    return k, 1, 32, (), []


def _counted_bar_deadlock(dev):
    def k(tc):
        # Only 4 lanes arrive at a barrier demanding 8: never releases.
        # (A classic barrier would release once the rest retire — counted
        # barriers demand absolute arrivals.)
        if tc.tid < 4:
            yield from tc.syncthreads(bar_id=1, count=8)

    return k, 1, 32, (), []


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("build", [_retired_lane_deadlock, _counted_bar_deadlock])
def test_deadlock_identical(executor, build, engine):
    """Incomplete groups deadlock identically under every engine."""
    te, me, _ = _launch_expect(executor, build, DeadlockError, engine)
    ti, mi, _ = _launch_expect(executor, build, DeadlockError, "instrumented")
    assert (te, me) == (ti, mi)
