"""Differential suite: fast round engine vs instrumented engine, bit for bit.

The fast engine (``docs/PERF.md``) is only legal because it is
*observationally identical* to the instrumented engine: same memory state,
same :class:`~repro.gpu.counters.KernelCounters`, same errors with the same
messages.  This suite proves that claim by running the same kernels under
both engines — randomized programs mixing every event type plus directed
kernels targeting the fast engine's migration seams (partial same-round
arrivals, sub-mask groups, counted barriers, faulting accesses) — and
comparing everything.

Runs under every executor in the CI matrix via the ``executor`` fixture,
so the parallel block-sharding engine's worker processes (which inherit
the engine selection) get the same differential coverage.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import DeadlockError, MemoryFault
from repro.gpu.costmodel import amd_mi100, nvidia_a100
from repro.gpu.device import Device


# ---------------------------------------------------------------------------
# Random program generator.
#
# A program is a seeded list of generator closures; every lane runs the same
# program, with divergence, masks, and addresses derived from lane/thread
# ids.  Global stores stay inside a block-private slice of ``w`` so kernels
# remain well-formed (race-free) under any block execution order.


def _op_compute(rng):
    kind = rng.choice(["alu", "fma", "sfu", "branch"])
    ops = rng.randint(1, 4)

    def op(tc, b, total):
        yield from tc.compute(kind, ops)
        return total + 1.0

    return op


def _op_divergent_compute(rng):
    k1 = rng.choice(["alu", "fma"])
    k2 = rng.choice(["sfu", "branch"])
    mod = rng.choice([2, 3, 5])

    def op(tc, b, total):
        if tc.lane_id % mod == 0:
            yield from tc.compute(k1, 2)
        else:
            yield from tc.compute(k2)
        return total + 0.5

    return op


def _op_load(rng):
    mult = rng.choice([1, 3, 5])
    off = rng.randint(0, 63)

    def op(tc, b, total):
        v = yield from tc.load(b["x"], (tc.global_tid * mult + off) % b["n"])
        return total + v

    return op


def _op_load_vec(rng):
    off = rng.randint(0, 31)

    def op(tc, b, total):
        g = tc.global_tid * 2 + off
        vs = yield from tc.load_vec(b["x"], [g % b["n"], (g + 1) % b["n"]])
        return total + vs[0] - vs[1]

    return op


def _op_store(rng):
    mult = rng.choice([1, 3, 5])  # odd: bijective over the pow-2 slice
    off = rng.randint(0, 63)

    def op(tc, b, total):
        size = 2 * tc.block_dim
        base = tc.block_id * size
        yield from tc.store(b["w"], base + (tc.tid * mult + off) % size, total)
        return total

    return op


def _op_store_vec(rng):
    def op(tc, b, total):
        base = tc.block_id * 2 * tc.block_dim
        i = base + 2 * tc.tid
        yield from tc.store_vec(b["w"], [i, i + 1], [total, -total])
        return total

    return op


def _op_atomic(rng):
    mode = rng.choice(["add", "max", "min", "exch"])
    idx = rng.randint(0, 3)
    val = rng.randint(1, 9)

    def op(tc, b, total):
        fn = getattr(tc, f"atomic_{mode}")
        old = yield from fn(b["acc"], idx, val)
        return total + float(old % 13)

    return op


def _op_shuffle(rng):
    mode = rng.choice(["down", "up", "xor", "idx"])
    delta = rng.randint(1, 7)

    def op(tc, b, total):
        if mode == "idx":
            s = yield from tc.shfl(total, delta)
        else:
            fn = getattr(tc, f"shfl_{mode}")
            s = yield from fn(total, delta)
        return total + (0.0 if s is None else s * 0.125)

    return op


def _op_shuffle_submask(rng):
    delta = rng.randint(1, 3)

    def op(tc, b, total):
        half = tc.warp_size // 2
        m = (1 << half) - 1
        if tc.lane_id < half:
            s = yield from tc.shfl_down(total, delta, m)
            return total + (0.0 if s is None else s)
        yield from tc.compute("alu")
        return total

    return op


def _op_vote(rng):
    mode = rng.choice(["any", "all", "ballot"])
    mod = rng.choice([2, 3, 7])

    def op(tc, b, total):
        pred = tc.lane_id % mod == 0
        if mode == "ballot":
            r = yield from tc.ballot(pred)
            return total + (r % 97)
        fn = getattr(tc, f"vote_{mode}")
        r = yield from fn(pred)
        return total + (1.0 if r else -1.0)

    return op


def _op_syncwarp(rng):
    def op(tc, b, total):
        yield from tc.syncwarp()
        return total

    return op


def _op_syncwarp_submask(rng):
    def op(tc, b, total):
        half = tc.warp_size // 2
        if tc.lane_id < half:
            yield from tc.syncwarp((1 << half) - 1)
        else:
            yield from tc.compute("fma")
        return total

    return op


def _op_bar(rng):
    def op(tc, b, total):
        yield from tc.syncthreads()
        return total

    return op


def _op_counted_bar(rng):
    def op(tc, b, total):
        count = tc.block_dim // 2
        if tc.tid < count:
            yield from tc.syncthreads(bar_id=1, count=count)
        else:
            yield from tc.compute("alu", 2)
        return total

    return op


def _op_skewed_collective(rng):
    """Lanes reach a collective in different rounds: exercises the fast
    engine's migration from inline same-round completion to the parked
    waiter path."""
    which = rng.choice(["bar", "syncwarp", "shfl"])
    mod = rng.choice([2, 3])

    def op(tc, b, total):
        for _ in range(tc.lane_id % mod):
            yield from tc.compute("alu")
        if which == "bar":
            yield from tc.syncthreads()
        elif which == "syncwarp":
            yield from tc.syncwarp()
        else:
            s = yield from tc.shfl_xor(total, 1)
            total += 0.0 if s is None else s
        return total

    return op


def _op_shared_tile(rng):
    d = rng.randint(1, 5)

    def op(tc, b, total):
        sh = b["cells"].get(tc.block_id)
        if sh is None:
            yield from tc.compute("alu")
            return total
        yield from tc.store(sh, tc.tid, total)
        yield from tc.syncthreads()
        v = yield from tc.load(sh, (tc.tid + d) % tc.block_dim)
        yield from tc.syncthreads()
        return total + v * 0.5

    return op


_OP_MAKERS = [
    _op_compute,
    _op_divergent_compute,
    _op_load,
    _op_load_vec,
    _op_store,
    _op_store_vec,
    _op_atomic,
    _op_shuffle,
    _op_shuffle_submask,
    _op_vote,
    _op_syncwarp,
    _op_syncwarp_submask,
    _op_bar,
    _op_counted_bar,
    _op_skewed_collective,
    _op_shared_tile,
]


def _run_random_kernel(seed, executor, params, fastpath, blocks=2, threads=64):
    """Build the seed's program on a fresh device and run it under one engine."""
    rng = random.Random(seed)
    prog = [rng.choice(_OP_MAKERS)(rng) for _ in range(rng.randint(10, 18))]
    use_shared = rng.random() < 0.75

    dev = Device(params, executor=executor)
    t = blocks * threads
    n = 2 * t
    x = dev.from_array("x", np.arange(n, dtype=np.float64) * 0.25 - 7.0)
    w = dev.from_array("w", np.zeros(n))
    acc = dev.alloc("acc", 4, np.int64)
    cells: dict = {}
    bufs = {"x": x, "w": w, "acc": acc, "cells": cells, "n": n}

    def k(tc, x, w, acc):
        if use_shared:
            if tc.tid == 0:
                cells[tc.block_id] = tc.shared_alloc(
                    "tile", tc.block_dim, np.float64
                )
            yield from tc.syncthreads()
        total = float(tc.global_tid) * 0.25
        for op in prog:
            total = yield from op(tc, bufs, total)
        size = 2 * tc.block_dim
        yield from tc.store(w, tc.block_id * size + tc.tid, total)

    kc = dev.launch(k, blocks, threads, args=(x, w, acc), fastpath=fastpath)
    return kc, x.to_numpy(), w.to_numpy(), acc.data.copy()


@pytest.mark.parametrize("seed", range(10))
def test_random_kernels_bit_identical(executor, seed):
    """Random event soup: memory, counters, and atomics match bit-for-bit."""
    kf, xf, wf, af = _run_random_kernel(seed, executor, nvidia_a100(), None)
    ki, xi, wi, ai = _run_random_kernel(seed, executor, nvidia_a100(), False)
    assert kf.identical(ki), f"seed {seed}: counters diverged"
    assert np.array_equal(xf, xi)
    assert np.array_equal(wf, wi)
    assert np.array_equal(af, ai)


@pytest.mark.parametrize("seed", range(10, 15))
def test_random_kernels_bit_identical_amd(executor, seed):
    """Same differential property on 64-wide wavefronts."""
    kf, xf, wf, af = _run_random_kernel(seed, executor, amd_mi100(), None)
    ki, xi, wi, ai = _run_random_kernel(seed, executor, amd_mi100(), False)
    assert kf.identical(ki), f"seed {seed}: counters diverged"
    assert np.array_equal(wf, wi)
    assert np.array_equal(af, ai)


# ---------------------------------------------------------------------------
# Directed error-behaviour equivalence


def _launch_expect(executor, build, exc, fastpath):
    """Run ``build``'s kernel expecting ``exc``; return (type, message, mem)."""
    dev = Device(nvidia_a100(), executor=executor)
    k, blocks, threads, args, bufs = build(dev)
    with pytest.raises(exc) as ei:
        dev.launch(k, blocks, threads, args=args, fastpath=fastpath)
    return type(ei.value), str(ei.value), [b.to_numpy().copy() for b in bufs]


def _oob_load(dev):
    x = dev.from_array("x", np.zeros(8))

    def k(tc, x):
        yield from tc.compute("alu")
        if tc.tid == 5:
            yield from tc.load(x, 64)
        else:
            yield from tc.compute("fma")

    return k, 1, 32, (x,), [x]


def _oob_store(dev):
    x = dev.from_array("x", np.arange(16, dtype=np.float64))

    def k(tc, x):
        # Lanes before the faulting one commit their stores first — the
        # partial memory state at the fault must match across engines.
        yield from tc.store(x, tc.tid % 16, -1.0)
        if tc.tid == 9:
            yield from tc.store(x, 99, 0.0)

    return k, 1, 32, (x,), [x]


def _oob_vec_load(dev):
    x = dev.from_array("x", np.zeros(8))

    def k(tc, x):
        yield from tc.load_vec(x, [tc.tid % 8, 8 + tc.tid])

    return k, 1, 32, (x,), [x]


@pytest.mark.parametrize("build", [_oob_load, _oob_store, _oob_vec_load])
def test_memory_fault_identical(executor, build):
    """Faults carry the same type/message and leave identical memory."""
    tf, mf, bf = _launch_expect(executor, build, MemoryFault, None)
    ti, mi, bi = _launch_expect(executor, build, MemoryFault, False)
    assert (tf, mf) == (ti, mi)
    for a, b in zip(bf, bi):
        assert np.array_equal(a, b)


def _retired_lane_deadlock(dev):
    def k(tc):
        if tc.lane_id < 16:
            return  # retire: the full-mask group below can never complete
            yield
        yield from tc.syncwarp()

    return k, 1, 32, (), []


def _counted_bar_deadlock(dev):
    def k(tc):
        # Only 4 lanes arrive at a barrier demanding 8: never releases.
        # (A classic barrier would release once the rest retire — counted
        # barriers demand absolute arrivals.)
        if tc.tid < 4:
            yield from tc.syncthreads(bar_id=1, count=8)

    return k, 1, 32, (), []


@pytest.mark.parametrize("build", [_retired_lane_deadlock, _counted_bar_deadlock])
def test_deadlock_identical(executor, build):
    """Incomplete groups deadlock identically under both engines."""
    tf, mf, _ = _launch_expect(executor, build, DeadlockError, None)
    ti, mi, _ = _launch_expect(executor, build, DeadlockError, False)
    assert (tf, mf) == (ti, mi)
