"""Tests for named, counted block barriers (PTX ``barrier.sync id, n``)."""

import numpy as np
import pytest

from repro.errors import DeadlockError


class TestNamedBarriers:
    def test_counted_barrier_releases_subset(self, device):
        """Workers barrier among themselves while warp 1 never arrives."""
        out = device.alloc("o", 1, np.int64)

        def k(tc, out):
            if tc.warp_id == 0:
                yield from tc.syncthreads(bar_id=1, count=32)
                yield from tc.atomic_add(out, 0, 1)
            else:
                for _ in range(50):
                    yield from tc.compute("alu")

        device.launch(k, 1, 64, args=(out,))
        assert out.read(0) == 32

    def test_main_join_unaffected_by_worker_barrier(self, device):
        """The warp-specialization pattern: main waits at id 0 while workers
        synchronize repeatedly at id 1; main must wake only when workers
        reach the id-0 join."""
        order = device.alloc("order", 3, np.int64)
        step = device.alloc("step", 1, np.int64)

        def k(tc, order, step):
            if tc.tid == 32:  # "main" thread in warp 1
                yield from tc.syncthreads(bar_id=0, count=33)
                s = yield from tc.load(step, 0)
                yield from tc.store(order, 2, s)
            elif tc.tid < 32:  # workers
                yield from tc.syncthreads(bar_id=1, count=32)
                if tc.tid == 0:
                    yield from tc.atomic_add(step, 0, 1)
                yield from tc.syncthreads(bar_id=1, count=32)
                if tc.tid == 0:
                    yield from tc.atomic_add(step, 0, 1)
                yield from tc.syncthreads(bar_id=0, count=33)
            else:
                return  # rest of warp 1 retires

        device.launch(k, 1, 64, args=(order, step))
        # Main observed both worker phases completed before its join fired.
        assert order.read(2) == 2

    def test_default_barrier_waits_for_named_waiters_forever(self, device):
        """A classic barrier cannot complete while lanes sit at a named one."""

        def k(tc):
            if tc.lane_id < 16:
                yield from tc.syncthreads()  # classic: needs all live lanes
            else:
                yield from tc.syncthreads(bar_id=7, count=32)  # never 32

        with pytest.raises(DeadlockError):
            device.launch(k, 1, 32)

    def test_two_independent_named_barriers(self, device):
        hits = device.alloc("h", 2, np.int64)

        def k(tc, hits):
            group = tc.tid // 16
            yield from tc.syncthreads(bar_id=group + 1, count=16)
            if tc.tid % 16 == 0:
                yield from tc.atomic_add(hits, group, 1)

        device.launch(k, 1, 32, args=(hits,))
        assert list(hits.to_numpy()) == [1, 1]

    def test_counted_barrier_counts_syncblocks(self, device):
        def k(tc):
            yield from tc.syncthreads(bar_id=1, count=32)

        kc = device.launch(k, 1, 32)
        assert kc.syncblocks == 1
