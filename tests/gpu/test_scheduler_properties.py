"""Property-based tests of the block scheduler.

Strategy: generate random straight-line per-lane programs over a small
buffer, run them through the simulator, and compare the final memory state
against a sequential reference interpreter that replays the same per-lane
operations in the scheduler's documented (round, warp, lane) order.  This
pins down the engine's functional semantics independent of the cost model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device

BUF = 16  # small buffer so collisions are common

# One per-lane op: (kind, index, value-seed)
op_strategy = st.tuples(
    st.sampled_from(["load", "store", "add", "compute", "sync"]),
    st.integers(min_value=0, max_value=BUF - 1),
    st.integers(min_value=-5, max_value=5),
)

program_strategy = st.lists(
    st.lists(op_strategy, min_size=0, max_size=6), min_size=1, max_size=8
)


def reference_execute(programs, init):
    """Sequential reference: one op per lane per round, lanes in order.

    ``sync`` ops act as barriers; since every lane executes its ops in
    lockstep rounds and the reference also advances round-by-round, the
    barrier is a no-op for ordering here — but lanes with shorter programs
    retire, matching the simulator's live-lane semantics.
    """
    mem = init.copy()
    results = [[] for _ in programs]
    max_len = max(len(p) for p in programs)
    for step in range(max_len):
        # Barrier alignment: all lanes at a sync must release together;
        # with equal step indices this is automatic.
        for lane, prog in enumerate(programs):
            if step >= len(prog):
                continue
            kind, idx, val = prog[step]
            if kind == "load":
                results[lane].append(mem[idx])
            elif kind == "store":
                mem[idx] = lane * 100 + val
            elif kind == "add":
                results[lane].append(mem[idx])
                mem[idx] += val
            # compute/sync: no memory effect
    return mem, results


def pad_syncs(programs):
    """Make sync ops structurally safe: all lanes sync at the same step.

    Replace each lane's op at step s with 'sync' iff ANY lane has 'sync'
    at step s (padding shorter lanes with sync too), so the warp barrier
    is always collectively reached.
    """
    max_len = max(len(p) for p in programs)
    sync_steps = {
        s
        for p in programs
        for s, op in enumerate(p)
        if op[0] == "sync"
    }
    out = []
    for p in programs:
        q = list(p) + [("compute", 0, 0)] * (max_len - len(p))
        out.append(
            [("sync", 0, 0) if s in sync_steps else op for s, op in enumerate(q)]
        )
    return out


@settings(deadline=None, max_examples=60)
@given(programs=program_strategy)
def test_simulator_matches_sequential_reference(programs):
    programs = pad_syncs(programs)
    init = np.arange(BUF, dtype=np.float64)

    dev = Device(nvidia_a100())
    buf = dev.from_array("buf", init)
    observed = [[] for _ in programs]

    def kernel(tc, buf):
        prog = programs[tc.tid]
        for kind, idx, val in prog:
            if kind == "load":
                v = yield from tc.load(buf, idx)
                observed[tc.tid].append(float(v))
            elif kind == "store":
                yield from tc.store(buf, idx, tc.tid * 100 + val)
            elif kind == "add":
                old = yield from tc.atomic_add(buf, idx, val)
                observed[tc.tid].append(float(old))
            elif kind == "compute":
                yield from tc.compute("alu")
            else:  # sync
                yield from tc.syncwarp()

    dev.launch(kernel, 1, len(programs), args=(buf,))
    ref_mem, ref_results = reference_execute(programs, init)
    assert np.array_equal(buf.to_numpy(), ref_mem)
    assert observed == ref_results


@settings(deadline=None, max_examples=25)
@given(programs=program_strategy)
def test_counters_deterministic_across_runs(programs):
    programs = pad_syncs(programs)

    def run():
        dev = Device(nvidia_a100())
        buf = dev.from_array("buf", np.zeros(BUF))

        def kernel(tc, buf):
            for kind, idx, val in programs[tc.tid]:
                if kind == "load":
                    yield from tc.load(buf, idx)
                elif kind == "store":
                    yield from tc.store(buf, idx, val)
                elif kind == "add":
                    yield from tc.atomic_add(buf, idx, val)
                elif kind == "compute":
                    yield from tc.compute("alu")
                else:
                    yield from tc.syncwarp()

        kc = dev.launch(kernel, 1, len(programs), args=(buf,))
        return (kc.cycles, kc.rounds, kc.issues, kc.mem_cycles,
                tuple(buf.to_numpy()))

    assert run() == run()


@settings(deadline=None, max_examples=25)
@given(
    n_threads=st.integers(min_value=1, max_value=96),
    trip=st.integers(min_value=0, max_value=40),
)
def test_grid_stride_store_covers_exactly(n_threads, trip):
    """Classic grid-stride loop writes each element exactly once."""
    dev = Device(nvidia_a100())
    out = dev.alloc("out", max(trip, 1), np.int64)

    def kernel(tc, out):
        i = tc.tid
        while i < trip:
            yield from tc.atomic_add(out, i, 1)
            i += tc.block_dim

    dev.launch(kernel, 1, n_threads, args=(out,))
    if trip:
        assert np.all(out.to_numpy()[:trip] == 1)
