"""Unit tests for cost parameters and device profiles."""

import pytest

from repro.gpu.costmodel import (
    CostParams,
    amd_mi100,
    benchmark_profile,
    get_profile,
    nvidia_a100,
)


class TestProfiles:
    def test_nvidia_defaults(self):
        p = nvidia_a100()
        assert p.warp_size == 32
        assert p.supports_warp_sync
        assert p.num_sms == 108

    def test_amd_differences(self):
        p = amd_mi100()
        assert p.warp_size == 64
        assert not p.supports_warp_sync

    def test_benchmark_profile_is_scaled(self):
        p = benchmark_profile()
        assert p.num_sms == 8
        assert p.sector_cycles < nvidia_a100().sector_cycles
        assert p.op_cost["fma"] == 6.0

    def test_registry_lookup(self):
        assert get_profile("nvidia-a100").name == "nvidia-a100"
        assert get_profile("amd-mi100").warp_size == 64

    def test_registry_unknown(self):
        with pytest.raises(KeyError, match="unknown device profile"):
            get_profile("intel-pvc")


class TestCostParams:
    def test_op_cycles_known_kind(self):
        p = CostParams()
        assert p.op_cycles("sfu", 2) == 8.0

    def test_op_cycles_unknown_kind_defaults_to_one(self):
        p = CostParams()
        assert p.op_cycles("mystery", 3) == 3.0

    def test_with_overrides_copies(self):
        p = CostParams()
        q = p.with_overrides(num_sms=4)
        assert q.num_sms == 4
        assert p.num_sms == 108

    def test_frozen(self):
        p = CostParams()
        with pytest.raises(Exception):
            p.num_sms = 1
