"""Behavioural tests for the thread-block scheduler: lockstep rounds,
divergence, barriers, deadlock detection, and determinism."""

import numpy as np
import pytest

from repro.errors import DeadlockError, LaunchError, SimulationError
from repro.gpu.block import ThreadBlock
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.gpu.memory import GlobalMemory


def make_block(entry, threads=32, args=(), params=None, max_rounds=100000):
    params = params or nvidia_a100()
    return ThreadBlock(
        block_id=0,
        num_threads=threads,
        params=params,
        gmem=GlobalMemory(),
        entry=entry,
        args=args,
        max_rounds=max_rounds,
    )


class TestBasicExecution:
    def test_all_threads_run_to_completion(self, device):
        out = device.alloc("out", 64, np.int64)

        def k(tc, out):
            yield from tc.store(out, tc.tid, tc.tid * 10)

        device.launch(k, 1, 64, args=(out,))
        assert np.array_equal(out.to_numpy(), np.arange(64) * 10)

    def test_load_returns_value(self, device):
        x = device.from_array("x", np.arange(32, dtype=np.float64))
        y = device.alloc("y", 32, np.float64)

        def k(tc, x, y):
            v = yield from tc.load(x, tc.tid)
            yield from tc.store(y, tc.tid, v + 1)

        device.launch(k, 1, 32, args=(x, y))
        assert np.array_equal(y.to_numpy(), np.arange(32) + 1.0)

    def test_vector_load_store(self, device):
        x = device.from_array("x", np.arange(8, dtype=np.float64))
        y = device.alloc("y", 8, np.float64)

        def k(tc, x, y):
            if tc.tid == 0:
                vals = yield from tc.load_vec(x, range(8))
                yield from tc.store_vec(y, range(8), [2 * v for v in vals])

        device.launch(k, 1, 32, args=(x, y))
        assert np.array_equal(y.to_numpy(), 2.0 * np.arange(8))

    def test_non_generator_entry_rejected(self, device):
        def not_a_gen(tc):
            return 42

        with pytest.raises(LaunchError, match="generator"):
            device.launch(not_a_gen, 1, 32)

    def test_empty_thread_retires_immediately(self, device):
        def k(tc):
            return
            yield

        kc = device.launch(k, 1, 32)
        assert kc.rounds == 0

    def test_store_arity_mismatch(self, device):
        y = device.alloc("y", 8, np.float64)

        def k(tc, y):
            from repro.gpu.events import Store

            yield Store(y, (0, 1), (1.0,))

        with pytest.raises(SimulationError, match="arity"):
            device.launch(k, 1, 1, args=(y,))


class TestRoundsAndDivergence:
    def test_rounds_count_longest_path(self):
        def k(tc):
            for _ in range(5):
                yield from tc.compute("alu")

        block = make_block(k)
        c = block.run()
        assert c.rounds == 5

    def test_converged_warp_single_issue_per_round(self):
        def k(tc):
            yield from tc.compute("alu")

        c = make_block(k).run()
        assert c.issues == 1
        assert c.divergent_issues == 0

    def test_divergent_kinds_issue_separately(self):
        def k(tc):
            if tc.lane_id < 16:
                yield from tc.compute("alu")
            else:
                yield from tc.compute("sfu")

        c = make_block(k).run()
        assert c.issues == 2
        assert c.divergent_issues == 1

    def test_two_warps_issue_independently(self):
        def k(tc):
            yield from tc.compute("alu")

        c = make_block(k, threads=64).run()
        assert c.issues == 2
        assert c.divergent_issues == 0

    def test_compute_cost_uses_max_ops_in_group(self):
        params = nvidia_a100()

        def k(tc):
            yield from tc.compute("alu", 1 + tc.lane_id)

        c = make_block(k, params=params).run()
        assert c.issue_cycles == params.op_cycles("alu", 32)

    def test_max_rounds_guard(self):
        def k(tc):
            while True:
                yield from tc.compute("alu")

        with pytest.raises(SimulationError, match="rounds"):
            make_block(k, max_rounds=100).run()


class TestWarpSync:
    def test_full_warp_sync_releases(self, device):
        def k(tc):
            yield from tc.syncwarp()
            yield from tc.compute("alu")

        kc = device.launch(k, 1, 32)
        assert kc.syncwarps == 1

    def test_partial_mask_groups_sync_independently(self, device):
        flags = device.alloc("f", 2, np.int64)

        def k(tc, flags):
            group = tc.lane_id // 16
            mask = 0xFFFF << (16 * group)
            # group 1 works before syncing; group 0 syncs immediately.
            if group == 1:
                for _ in range(10):
                    yield from tc.compute("alu")
            yield from tc.syncwarp(mask)
            if tc.lane_id % 16 == 0:
                yield from tc.atomic_add(flags, group, 1)

        kc = device.launch(k, 1, 32, args=(flags,))
        assert kc.syncwarps == 2
        assert list(flags.to_numpy()) == [1, 1]

    def test_sync_mask_must_include_caller(self, device):
        def k(tc):
            yield from tc.syncwarp(0x1 if tc.lane_id != 0 else 0x2)

        from repro.errors import SynchronizationError

        with pytest.raises(SynchronizationError, match="does not include itself"):
            device.launch(k, 1, 2)

    def test_retired_lane_in_mask_deadlocks(self, device):
        def k(tc):
            if tc.lane_id == 0:
                return
                yield
            yield from tc.syncwarp()

        with pytest.raises(DeadlockError, match="deadlock"):
            device.launch(k, 1, 32)

    def test_mismatched_masks_deadlock(self, device):
        def k(tc):
            mask = 0x3 if tc.lane_id == 0 else 0x3 | 0x4
            yield from tc.syncwarp(mask | (1 << tc.lane_id))

        with pytest.raises(DeadlockError):
            device.launch(k, 1, 2)

    def test_warp_sync_orders_memory(self, device):
        """Producer/consumer across a warp barrier sees the written value."""
        buf = device.alloc("b", 1, np.float64)
        out = device.alloc("o", 32, np.float64)

        def k(tc, buf, out):
            if tc.lane_id == 0:
                yield from tc.store(buf, 0, 7.0)
            yield from tc.syncwarp()
            v = yield from tc.load(buf, 0)
            yield from tc.store(out, tc.lane_id, v)

        device.launch(k, 1, 32, args=(buf, out))
        assert np.all(out.to_numpy() == 7.0)


class TestBlockBarrier:
    def test_syncthreads_releases_all_warps(self, device):
        out = device.alloc("o", 1, np.int64)

        def k(tc, out):
            if tc.warp_id == 0:
                for _ in range(20):
                    yield from tc.compute("alu")
            yield from tc.syncthreads()
            if tc.tid == 0:
                yield from tc.atomic_add(out, 0, 1)

        kc = device.launch(k, 1, 128, args=(out,))
        assert kc.syncblocks == 1
        assert out.read(0) == 1

    def test_retired_threads_excluded_from_barrier(self, device):
        out = device.alloc("o", 1, np.int64)

        def k(tc, out):
            if tc.warp_id == 1:
                return  # whole warp retires without reaching the barrier
                yield
            yield from tc.syncthreads()
            if tc.tid == 0:
                yield from tc.atomic_add(out, 0, 1)

        device.launch(k, 1, 64, args=(out,))
        assert out.read(0) == 1

    def test_producer_consumer_across_warps(self, device):
        buf = device.alloc("b", 1, np.float64)
        out = device.alloc("o", 64, np.float64)

        def k(tc, buf, out):
            if tc.tid == 63:
                yield from tc.store(buf, 0, 5.0)
            yield from tc.syncthreads()
            v = yield from tc.load(buf, 0)
            yield from tc.store(out, tc.tid, v)

        device.launch(k, 1, 64, args=(buf, out))
        assert np.all(out.to_numpy() == 5.0)

    def test_repeated_barriers(self, device):
        def k(tc):
            for _ in range(5):
                yield from tc.syncthreads()

        kc = device.launch(k, 1, 64)
        assert kc.syncblocks == 5


class TestAtomics:
    def test_atomic_add_correct_total(self, device):
        acc = device.alloc("acc", 1, np.float64)

        def k(tc, acc):
            yield from tc.atomic_add(acc, 0, 1.0)

        device.launch(k, 4, 128, args=(acc,))
        assert acc.read(0) == 512.0

    def test_atomic_returns_old_value_deterministically(self, device):
        acc = device.alloc("acc", 1, np.int64)
        olds = device.alloc("olds", 32, np.int64)

        def k(tc, acc, olds):
            old = yield from tc.atomic_add(acc, 0, 1)
            yield from tc.store(olds, tc.lane_id, old)

        device.launch(k, 1, 32, args=(acc, olds))
        # Lane order within a round is the application order.
        assert np.array_equal(olds.to_numpy(), np.arange(32))

    def test_atomic_conflict_counter(self, device):
        acc = device.alloc("acc", 1, np.int64)

        def k(tc, acc):
            yield from tc.atomic_add(acc, 0, 1)

        kc = device.launch(k, 1, 32, args=(acc,))
        assert kc.total("atomic_conflicts") == 31

    def test_atomic_cas_and_exch(self, device):
        slot = device.alloc("s", 1, np.int64)
        winners = device.alloc("w", 1, np.int64)

        def k(tc, slot, winners):
            old = yield from tc.atomic_cas(slot, 0, 0, tc.lane_id + 1)
            if old == 0:
                yield from tc.atomic_add(winners, 0, 1)

        device.launch(k, 1, 32, args=(slot, winners))
        assert winners.read(0) == 1
        assert slot.read(0) == 1  # lane 0 applied first

    def test_atomic_max_min(self, device):
        hi = device.alloc("hi", 1, np.int64)
        lo = device.from_array("lo", np.array([100], dtype=np.int64))

        def k(tc, hi, lo):
            yield from tc.atomic_max(hi, 0, tc.tid)
            yield from tc.atomic_min(lo, 0, tc.tid)

        device.launch(k, 1, 64, args=(hi, lo))
        assert hi.read(0) == 63
        assert lo.read(0) == 0


class TestDeterminism:
    def test_identical_runs_produce_identical_counters(self):
        def k(tc, out):
            v = yield from tc.atomic_add(out, 0, tc.tid)
            yield from tc.compute("fma", int(v) % 3 + 1)
            yield from tc.syncthreads()

        results = []
        for _ in range(2):
            dev = Device(nvidia_a100())
            out = dev.alloc("o", 1, np.int64)
            kc = dev.launch(k, 2, 64, args=(out,))
            results.append((out.read(0), kc.cycles, kc.rounds, kc.issues))
        assert results[0] == results[1]


class TestAtomicContentionKey:
    @pytest.mark.parametrize("fastpath", [None, False])
    def test_aliased_buffers_contend(self, fastpath):
        """Two Buffer objects over the same storage are one address.

        Contention is keyed by the stable ``(space, base)`` device address,
        not Python object identity — two handles aliasing the same
        allocation must serialize against each other.
        """
        from repro.gpu.memory import Buffer

        dev = Device(nvidia_a100())
        acc = dev.alloc("acc", 1, np.int64)
        alias = Buffer(
            "acc_alias", acc.space, acc.size, acc.dtype,
            base=acc.base, handle=acc.handle, data=acc.data,
        )

        def k(tc, acc, alias):
            target = acc if tc.lane_id % 2 == 0 else alias
            yield from tc.atomic_add(target, 0, 1)

        kc = dev.launch(k, 1, 32, args=(acc, alias), fastpath=fastpath)
        assert acc.read(0) == 32
        assert kc.total("atomic_conflicts") == 31

    @pytest.mark.parametrize("fastpath", [None, False])
    def test_local_buffers_not_conflated(self, fastpath):
        """Lane-private local buffers all sit at base 0 but never contend."""
        dev = Device(nvidia_a100())

        def k(tc):
            lb = tc.alloca("scratch", 1, np.int64)
            yield from tc.atomic_add(lb, 0, 1)

        kc = dev.launch(k, 1, 32, fastpath=fastpath)
        assert kc.total("atomic_conflicts") == 0


class TestRetiredLaneState:
    @pytest.mark.parametrize("fastpath", [None, False])
    def test_pending_cleared_on_retire(self, fastpath):
        """A lane retiring right after a load must not pin the loaded value.

        ``lane.pending`` holds the value the next resume would deliver; on
        StopIteration the scheduler clears it so retired lanes hold no
        stale references to buffer contents.
        """
        from repro.gpu.memory import Buffer

        x = Buffer("x", "global", 4, np.float64, data=np.arange(4.0))

        def k(tc, x):
            yield from tc.load(x, tc.lane_id % 4)

        tb = ThreadBlock(
            block_id=0,
            num_threads=32,
            params=nvidia_a100(),
            gmem=GlobalMemory(),
            entry=k,
            args=(x,),
            fastpath=fastpath,
        )
        tb.run()
        assert all(l.pending is None for l in tb.lanes)
        assert all(l.posted is None for l in tb.lanes)

    @pytest.mark.parametrize("engine", ["instrumented", "fast", "jit"])
    def test_posted_cleared_at_barrier_parks(self, engine):
        """A lane migrating from a shuffle to a barrier park must not drag
        its posted event along.

        Only shuffle/vote waiters may carry ``lane.posted``; the fast
        engine's barrier park sites clear it explicitly, otherwise a lane
        whose shuffle resolved inline mid-round can retire still pinning
        the stale event (and its payload).  The skewed arrivals below
        drive lanes through every park site: inline same-round groups,
        second-key same-round parks, and partial-arrival parks.  Under
        ``engine="jit"`` the shuffle forces a deopt, so the same property
        holds on the deopt replay path.
        """
        from repro.gpu.thread import DONE

        def k(tc):
            for _ in range(tc.lane_id % 3):
                yield from tc.compute("alu")
            s = yield from tc.shfl_xor(tc.lane_id * 1.0, 1)
            for _ in range(tc.lane_id % 2):
                yield from tc.compute("alu")
            yield from tc.syncthreads()
            if tc.tid < 16:
                yield from tc.syncthreads(bar_id=1, count=16)
            else:
                yield from tc.compute("fma", 2)
            yield from tc.syncwarp()
            assert s is not None

        tb = ThreadBlock(
            block_id=0,
            num_threads=64,
            params=nvidia_a100(),
            gmem=GlobalMemory(),
            entry=k,
            args=(),
            engine=engine,
        )
        tb.run()
        for lane in tb.lanes:
            assert lane.state == DONE
            assert lane.pending is None
            assert lane.posted is None
            assert lane.wait_key is None
