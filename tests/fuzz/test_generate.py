"""Generator validity: every seeded plan is well-formed, deterministic,
serializable, and its oracle matches the device bit-for-bit."""

import random

import numpy as np
import pytest

from repro.fuzz.generate import (
    ATOMIC_CELLS,
    STRUCTURES,
    KernelPlan,
    build_program,
    make_inputs,
    oracle,
    plan_from_dict,
    plan_from_seed,
    store_slots,
    total_iterations,
)


def _first_seed_per_structure(limit=400):
    found = {}
    for seed in range(limit):
        plan = plan_from_seed(seed)
        if plan.structure not in found:
            found[plan.structure] = seed
        if len(found) == len(STRUCTURES):
            break
    return found


class TestPlanValidity:
    @pytest.mark.parametrize("seed", list(range(40)))
    def test_every_plan_is_well_formed(self, seed):
        plan = plan_from_seed(seed)
        assert plan.structure in STRUCTURES
        assert plan.statements
        assert len(plan.statements) <= 9  # 8 drawn + forced observable store
        # Every program observes something.
        assert any(s[0] in ("store", "store_rot", "atomic_add", "atomic_max")
                   for s in plan.statements)
        # Store slots are private and sequential.
        slots = [s[1] for s in plan.statements
                 if s[0] in ("store", "store_rot")]
        assert slots == list(range(len(slots)))
        # Atomic cell discipline: add owns 0..1, max owns 2..3.
        for s in plan.statements:
            if s[0] == "atomic_add":
                assert s[1] in (0, 1)
            if s[0] == "atomic_max":
                assert s[1] in (2, 3)
        # Cross-lane statements only under the sync geometry.
        if plan.structure != "sync":
            assert not any(s[0] in ("shfl_xor", "vote", "ballot", "syncwarp",
                                    "syncthreads") for s in plan.statements)
        else:
            assert plan.outer == plan.num_teams * plan.team_size
            assert plan.mode == "spmd"
            assert plan.simd_len == 1
        assert plan.bug is None  # never drawn, only injected

    def test_plan_from_seed_is_deterministic(self):
        for seed in (0, 7, 2023, 99999):
            assert plan_from_seed(seed) == plan_from_seed(seed)

    def test_plan_ignores_global_random_state(self):
        random.seed(123)
        a = plan_from_seed(5)
        random.seed(456)
        b = plan_from_seed(5)
        assert a == b

    def test_all_structures_reachable(self):
        assert set(_first_seed_per_structure()) == set(STRUCTURES)

    def test_dict_roundtrip(self):
        for seed in (0, 3, 2023):
            plan = plan_from_seed(seed)
            assert plan_from_dict(plan.to_dict()) == plan

    def test_inputs_shapes(self):
        plan = plan_from_seed(11)
        inputs = make_inputs(plan)
        total = total_iterations(plan)
        assert len(inputs["out"]) == total * store_slots(plan)
        assert len(inputs["acc"]) == ATOMIC_CELLS
        assert len(inputs["x"]) >= 32
        assert all(v.dtype == np.float64 for v in inputs.values())
        # Same seed, same data.
        again = make_inputs(plan)
        assert all(np.array_equal(inputs[k], again[k]) for k in inputs)


class TestOracleMatchesDevice:
    @pytest.mark.parametrize(
        "structure,seed", sorted(_first_seed_per_structure().items()))
    def test_oracle_vs_instrumented(self, structure, seed):
        from repro.core import api as omp
        from repro.gpu.device import Device

        plan = plan_from_seed(seed)
        assert plan.structure == structure
        inputs = make_inputs(plan)
        expect = oracle(plan, inputs)
        dev = Device()
        buffers = {k: dev.from_array(k, v) for k, v in inputs.items()}
        tree, launch_kwargs = build_program(plan)
        omp.launch(dev, tree, args=buffers, engine="instrumented",
                   **launch_kwargs)
        for name in ("out", "acc", "red", "x"):
            got = buffers[name].to_numpy()
            assert np.array_equal(got, expect[name]), \
                f"{structure} seed {seed}: buffer {name!r} diverged"

    def test_injected_bug_breaks_the_oracle_match(self):
        from repro.core import api as omp
        from repro.gpu.device import Device

        plan = KernelPlan(seed=1, structure="flat", outer=33,
                          statements=(("load", 1, 0), ("muladd", 2, 1),
                                      ("store", 0)),
                          bug="off_by_one")
        inputs = make_inputs(plan)
        expect = oracle(plan, inputs)  # oracle is always the honest value
        dev = Device()
        buffers = {k: dev.from_array(k, v) for k, v in inputs.items()}
        tree, launch_kwargs = build_program(plan)
        omp.launch(dev, tree, args=buffers, **launch_kwargs)
        assert not np.array_equal(buffers["out"].to_numpy(), expect["out"])
