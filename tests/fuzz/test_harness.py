"""Differential harness: clean plans pass the matrix, injected bugs are
mismatches, the schedule leg skips cost accounting.

The smoke-leg tests take the suite's ``executor`` fixture so the whole
differential matrix also runs under ``REPRO_EXECUTOR`` sweeps.
"""

from dataclasses import replace

import pytest

from repro.fuzz.generate import KernelPlan, plan_from_seed
from repro.fuzz.harness import (
    LegOutcome,
    default_legs,
    run_campaign,
    run_leg,
    run_program,
)

BUGGY = KernelPlan(seed=77, structure="flat", outer=33,
                   statements=(("load", 1, 0), ("muladd", 2, 1),
                               ("store", 0)),
                   bug="off_by_one")


class TestRunProgram:
    @pytest.mark.parametrize("seed", [2023, 2024, 2025, 2026])
    def test_clean_plans_pass_smoke_legs(self, seed, executor):
        plan = plan_from_seed(seed)
        result = run_program(plan, legs=default_legs(smoke=True,
                                                     executor=executor))
        assert result.ok, [m.describe() for m in result.mismatches]
        assert len(result.legs) == 3
        assert all(leg.ok for leg in result.legs)

    def test_clean_plan_passes_full_matrix(self):
        result = run_program(plan_from_seed(2023))
        assert result.ok, [m.describe() for m in result.mismatches]
        names = [leg.leg for leg in result.legs]
        assert "fast-parallel" in names
        assert any(n.startswith("schedule-") for n in names)
        assert any(n.startswith("batch") for n in names)

    def test_injected_bug_is_detected_on_every_engine(self, executor):
        result = run_program(BUGGY, legs=default_legs(smoke=True,
                                                      executor=executor))
        assert not result.ok
        # Every engine deviates from the oracle (identically, so no
        # cross-engine mismatch — the oracle is what catches the bug).
        oracle_flagged = {m.leg for m in result.mismatches
                          if m.against == "oracle"}
        assert oracle_flagged == {"instrumented", "fast", "jit"}
        assert all(m.what == "output:out" for m in result.mismatches), \
            [m.describe() for m in result.mismatches]

    def test_drop_last_bug_detected(self, executor):
        plan = replace(BUGGY, bug="drop_last")
        result = run_program(plan, legs=default_legs(smoke=True,
                                                     executor=executor))
        assert not result.ok

    def test_schedule_leg_skips_counter_comparison(self):
        plan = plan_from_seed(2026)  # atomics: contention is schedule-bound
        outcome = run_leg(plan, "schedule")
        assert outcome.ok
        assert not outcome.compare_counters
        engine_leg = run_leg(plan, "instrumented")
        assert engine_leg.compare_counters

    def test_counters_never_carry_jit_telemetry(self):
        outcome = run_leg(plan_from_seed(2023), "jit")
        assert outcome.ok
        assert "engine" not in outcome.counters
        assert not any(k.startswith("jit_") for k in outcome.counters)

    def test_error_legs_must_agree(self):
        bad = LegOutcome(leg="weird", error=("BoomError", "synthetic"))
        good_legs = [("instrumented",
                      lambda p: run_leg(p, "instrumented")),
                     ("weird", lambda p: bad)]
        result = run_program(plan_from_seed(2023), legs=good_legs)
        assert not result.ok
        assert any(m.what == "error" for m in result.mismatches)


class TestCampaign:
    def test_small_campaign_passes(self, executor):
        campaign = run_campaign(5, 2023,
                                legs=default_legs(smoke=True,
                                                  executor=executor))
        assert campaign.ok
        assert campaign.programs == 5
        assert campaign.stop_reason == "exhausted"
        assert "PASS" in campaign.describe()

    def test_stop_on_failure(self, executor):
        # run_campaign draws plans itself; emulate one failing seed by
        # wrapping every leg with a bug-injecting stage.
        legs = [(name,
                 (lambda fn: lambda p: fn(
                     replace(p, bug="off_by_one")
                     if p.seed == 3000 else p))(fn))
                for name, fn in default_legs(smoke=True, executor=executor)]
        campaign = run_campaign(4, 3000, legs=legs, stop_on_failure=True)
        assert not campaign.ok
        assert campaign.stop_reason == "failure"
        assert campaign.programs == 1  # seed 3000 fails immediately, stop
        assert campaign.failures[0].plan.seed == 3000

    def test_max_seconds_budget(self):
        campaign = run_campaign(1000, 2023, max_seconds=0.0,
                                legs=default_legs(smoke=True))
        assert campaign.programs == 0
        assert campaign.stop_reason == "max_seconds"
