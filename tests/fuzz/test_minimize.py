"""Plan-field reduction: failures shrink to tiny, still-failing repros."""

from dataclasses import replace

import pytest

from repro.fuzz.generate import KernelPlan, plan_from_seed, total_iterations
from repro.fuzz.harness import default_legs, run_program
from repro.fuzz.minimize import minimize, simpler_plans, shrink_summary

SMOKE = default_legs(smoke=True)


def _failing(plan):
    return not run_program(plan, legs=SMOKE).ok


class TestSimplerPlans:
    def test_candidates_are_strictly_simpler(self):
        plan = plan_from_seed(2023)
        for cand in simpler_plans(plan):
            assert (len(cand.statements) < len(plan.statements)
                    or total_iterations(cand) <= total_iterations(plan)
                    or cand.structure != plan.structure
                    or (cand.schedule, cand.chunk, cand.dist_schedule,
                        cand.dist_chunk, cand.mode, cand.num_teams,
                        cand.team_size, cand.simd_len)
                    != (plan.schedule, plan.chunk, plan.dist_schedule,
                        plan.dist_chunk, plan.mode, plan.num_teams,
                        plan.team_size, plan.simd_len))

    def test_sync_geometry_stays_pinned(self):
        for seed in range(200):
            plan = plan_from_seed(seed)
            if plan.structure == "sync":
                break
        else:
            pytest.skip("no sync plan in range")
        for cand in simpler_plans(plan):
            if cand.structure == "sync":
                assert cand.outer == cand.num_teams * cand.team_size

    def test_bug_field_survives_shrinking(self):
        plan = replace(plan_from_seed(2023), bug="off_by_one")
        assert all(c.bug == "off_by_one" for c in simpler_plans(plan))


class TestMinimize:
    def test_passing_plan_is_rejected(self):
        with pytest.raises(ValueError, match="failing plan"):
            minimize(plan_from_seed(2023), _failing)

    def test_injected_failure_shrinks_to_tiny_repro(self):
        plan = KernelPlan(
            seed=42, structure="split", num_teams=3, team_size=64,
            simd_len=4, schedule="guided", chunk=2,
            dist_schedule="static_cyclic", outer=16, mid=16, inner=17,
            statements=(("load", 2, 3), ("compute", "alu", 2),
                        ("muladd", 3, 1), ("atomic_add", 0, 5),
                        ("store", 0), ("store_rot", 1, 4)),
            bug="off_by_one",
        )
        assert _failing(plan)
        small = minimize(plan, _failing)
        assert _failing(small)
        # The acceptance bar: a repro of at most 10 statements — here the
        # off-by-one needs only the store it perturbs.
        assert len(small.statements) <= 10
        assert len(small.statements) <= 2
        assert total_iterations(small) < total_iterations(plan)
        assert small.num_teams == 1 and small.team_size == 32
        summary = shrink_summary(plan, small)
        assert "6 →" in summary or "statements" in summary

    def test_drop_last_failure_shrinks(self):
        plan = KernelPlan(
            seed=43, structure="flat", outer=100, num_teams=2, team_size=64,
            statements=(("muladd", 1, 3), ("store", 0), ("atomic_add", 1, 7)),
            bug="drop_last",
        )
        assert _failing(plan)
        small = minimize(plan, _failing)
        assert _failing(small)
        assert len(small.statements) <= 2  # muladd + the dropped store
        assert any(s[0] == "store" for s in small.statements)

    def test_budget_returns_best_so_far(self):
        plan = KernelPlan(
            seed=44, structure="flat", outer=64,
            statements=(("muladd", 1, 3), ("store", 0)),
            bug="drop_last",
        )
        small = minimize(plan, _failing, max_checks=1)
        assert _failing(small)  # never returns a passing plan
