"""``python -m repro.fuzz`` CLI: campaign, replay, minimize, artifacts."""

import json
import os
import subprocess
import sys

import pytest

from repro.fuzz.generate import KernelPlan


def _run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src")
    return subprocess.run(
        [sys.executable, "-m", "repro.fuzz", *argv],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


BUGGY = KernelPlan(seed=9, structure="flat", outer=33,
                   statements=(("muladd", 1, 3), ("store", 0)),
                   bug="drop_last")


class TestCampaignCommand:
    def test_smoke_campaign_passes_with_artifacts(self, tmp_path):
        art = tmp_path / "artifacts"
        proc = _run_cli("campaign", "--count", "3", "--smoke",
                        "--artifacts", str(art))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout
        summary = json.loads((art / "campaign.json").read_text())
        assert summary["ok"] is True
        assert summary["programs"] == 3
        assert summary["seed"] == 2023  # the documented campaign seed
        assert summary["failing_seeds"] == []

    def test_no_command_prints_usage(self):
        proc = _run_cli()
        assert proc.returncode == 2
        assert "campaign" in proc.stdout


class TestReplayCommand:
    def test_replay_by_seed(self):
        proc = _run_cli("replay", "--seed", "2023", "--smoke")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout
        assert "seed=2023" in proc.stdout

    def test_replay_failing_plan_file(self, tmp_path):
        plan_file = tmp_path / "repro.json"
        plan_file.write_text(json.dumps({"plan": BUGGY.to_dict()}))
        proc = _run_cli("replay", "--plan", str(plan_file), "--smoke")
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout
        assert "output:out" in proc.stdout


class TestMinimizeCommand:
    def test_minimize_failing_plan_writes_output(self, tmp_path):
        plan_file = tmp_path / "repro.json"
        out_file = tmp_path / "min.json"
        plan_file.write_text(json.dumps({"plan": BUGGY.to_dict()}))
        proc = _run_cli("minimize", "--plan", str(plan_file), "--smoke",
                        "--out", str(out_file))
        assert proc.returncode == 1  # input was a real failure
        assert "minimized" in proc.stdout
        small = json.loads(out_file.read_text())["plan"]
        assert len(small["statements"]) <= 10
        assert small["bug"] == "drop_last"

    def test_minimize_passing_plan_is_a_noop(self):
        proc = _run_cli("minimize", "--seed", "2023", "--smoke")
        assert proc.returncode == 0
        assert "nothing to minimize" in proc.stdout
