"""Tests for the dist_schedule clause (team-level iteration mapping)."""

import numpy as np
import pytest

from repro.errors import DirectiveNestingError
from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device


@pytest.fixture
def dev():
    return Device(nvidia_a100())


def owner_body(tc, ivs, view):
    (i,) = ivs
    yield from tc.store(view["owner"], i, tc.block_id)


class TestTdpfDistSchedule:
    def test_static_contiguous_blocks(self, dev):
        owner = dev.from_array("owner", np.full(16, -1, dtype=np.int64))
        tree = omp.target(
            omp.teams_distribute_parallel_for(16, body=owner_body)
        )
        omp.launch(dev, tree, num_teams=2, team_size=32, args={"owner": owner})
        assert list(owner.to_numpy()) == [0] * 8 + [1] * 8

    def test_cyclic_chunks(self, dev):
        owner = dev.from_array("owner", np.full(16, -1, dtype=np.int64))
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                16, body=owner_body, dist_schedule="static_cyclic", dist_chunk=2,
            )
        )
        omp.launch(dev, tree, num_teams=2, team_size=32, args={"owner": owner})
        expect = [0, 0, 1, 1] * 4
        assert list(owner.to_numpy()) == expect

    def test_invalid_dist_schedule(self):
        with pytest.raises(DirectiveNestingError, match="dist_schedule"):
            omp.teams_distribute_parallel_for(
                8, body=owner_body, dist_schedule="dynamic"
            )


class TestTeamsDistributeDistSchedule:
    def test_cyclic_distribute(self, dev):
        owner = dev.from_array("owner", np.full(12, -1, dtype=np.int64))

        def main_body(tc, ivs, view):
            (i,) = ivs
            yield from tc.store(view["owner"], i, tc.block_id)

        tree = omp.target(
            omp.teams_distribute(
                12, body=main_body, schedule="static_cyclic", dist_chunk=3,
            )
        )
        omp.launch(dev, tree, num_teams=2, team_size=32, args={"owner": owner})
        assert list(owner.to_numpy()) == [0, 0, 0, 1, 1, 1] * 2

    def test_invalid_distribute_schedule(self):
        with pytest.raises(DirectiveNestingError, match="dist_schedule"):
            omp.teams_distribute(8, body=owner_body, schedule="guided")

    def test_results_identical_across_dist_schedules(self, dev):
        """dist_schedule changes the mapping, never the result."""
        results = {}
        for sched, chunk in (("static", 1), ("static_cyclic", 1), ("static_cyclic", 4)):
            d = Device(nvidia_a100())
            y = d.from_array("y", np.zeros(64))
            x = d.from_array("x", np.arange(64, dtype=np.float64))

            def body(tc, ivs, view):
                (i,) = ivs
                v = yield from tc.load(view["x"], i)
                yield from tc.store(view["y"], i, v * 2.0)

            tree = omp.target(
                omp.teams_distribute_parallel_for(
                    64, body=body, dist_schedule=sched, dist_chunk=chunk,
                )
            )
            omp.launch(d, tree, num_teams=4, team_size=32, args={"x": x, "y": y})
            results[(sched, chunk)] = y.to_numpy()
        base = results[("static", 1)]
        assert all(np.array_equal(base, r) for r in results.values())
