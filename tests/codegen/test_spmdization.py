"""Tests for the SPMDization mode analysis (§3.2/§5.4 rules)."""

import pytest

from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import (
    ParallelFor,
    Simd,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
)
from repro.codegen.spmdization import analyze_modes
from repro.runtime.icv import ExecMode


def body(tc, ivs, view):
    yield from tc.compute("alu")


def pre(tc, ivs, view):
    yield from tc.compute("alu")
    return {"x": 1}


def leaf(trip=4, **kw):
    return CanonicalLoop(trip_count=trip, body=body, **kw)


class TestCombinedConstruct:
    def test_leaf_tdpf_is_all_spmd(self):
        r = analyze_modes(Target(TeamsDistributeParallelFor(leaf())))
        assert r.teams_mode is ExecMode.SPMD
        assert r.parallel_mode is ExecMode.SPMD
        assert not r.forced

    def test_tight_simd_is_all_spmd(self):
        tree = Target(
            TeamsDistributeParallelFor(
                CanonicalLoop(trip_count=4, nested=Simd(leaf()))
            )
        )
        r = analyze_modes(tree)
        assert (r.teams_mode, r.parallel_mode) == (ExecMode.SPMD, ExecMode.SPMD)

    def test_nontight_simd_forces_generic_parallel(self):
        tree = Target(
            TeamsDistributeParallelFor(
                CanonicalLoop(
                    trip_count=4, nested=Simd(leaf()), pre=pre,
                    captures=(("x", "i64"),),
                )
            )
        )
        r = analyze_modes(tree)
        assert r.teams_mode is ExecMode.SPMD
        assert r.parallel_mode is ExecMode.GENERIC


class TestSplitConstruct:
    def test_teams_distribute_is_generic(self):
        """The paper's sparse baseline shape: TD + nested PF => teams generic."""
        tree = Target(
            TeamsDistribute(CanonicalLoop(trip_count=4, nested=ParallelFor(leaf())))
        )
        r = analyze_modes(tree)
        assert r.teams_mode is ExecMode.GENERIC
        assert r.parallel_mode is ExecMode.SPMD

    def test_sequential_teams_loop(self):
        r = analyze_modes(Target(TeamsDistribute(leaf())))
        assert r.teams_mode is ExecMode.GENERIC
        assert r.parallel_mode is ExecMode.SPMD

    def test_three_levels_tight(self):
        inner = ParallelFor(CanonicalLoop(trip_count=3, nested=Simd(leaf())))
        tree = Target(TeamsDistribute(CanonicalLoop(trip_count=4, nested=inner)))
        r = analyze_modes(tree)
        assert r.teams_mode is ExecMode.GENERIC
        assert r.parallel_mode is ExecMode.SPMD

    def test_three_levels_nontight(self):
        inner = ParallelFor(
            CanonicalLoop(trip_count=3, nested=Simd(leaf()), pre=pre,
                          captures=(("x", "i64"),))
        )
        tree = Target(TeamsDistribute(CanonicalLoop(trip_count=4, nested=inner)))
        assert analyze_modes(tree).parallel_mode is ExecMode.GENERIC


class TestForcedModes:
    def test_guarded_spmdization_of_teams(self):
        tree = Target(
            TeamsDistribute(CanonicalLoop(trip_count=4, nested=ParallelFor(leaf()))),
            teams_mode=ExecMode.SPMD,
        )
        r = analyze_modes(tree)
        assert r.teams_mode is ExecMode.SPMD
        assert r.forced
        assert any("guarded" in reason.lower() for reason in r.reasons)

    def test_force_generic_parallel(self):
        tree = Target(
            TeamsDistributeParallelFor(
                CanonicalLoop(trip_count=4, nested=Simd(leaf())),
                mode=ExecMode.GENERIC,
            )
        )
        r = analyze_modes(tree)
        assert r.parallel_mode is ExecMode.GENERIC
        assert r.forced

    def test_matching_clause_not_marked_forced(self):
        tree = Target(
            TeamsDistributeParallelFor(leaf(), mode=ExecMode.SPMD)
        )
        assert not analyze_modes(tree).forced

    def test_describe_lists_reasons(self):
        r = analyze_modes(Target(TeamsDistributeParallelFor(leaf())))
        text = r.describe()
        assert "teams: spmd" in text
        assert "-" in text


def test_analysis_rejects_non_target():
    from repro.errors import DirectiveNestingError

    with pytest.raises(DirectiveNestingError):
        analyze_modes(TeamsDistribute(leaf()))
