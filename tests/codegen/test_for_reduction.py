"""Tests for the for-level reduction clause (§7 extension, team scope)."""

import numpy as np
import pytest

from repro.errors import DirectiveNestingError
from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode


@pytest.fixture
def dev():
    return Device(nvidia_a100())


N = 128


def value_body(tc, ivs, view):
    i = ivs[-1]
    v = yield from tc.load(view["x"], i)
    yield from tc.compute("fma")
    return float(v)


def atomic_finalize(tc, ivs_outer, view, total):
    yield from tc.atomic_add(view["out"], 0, total)


def make_args(dev):
    return {
        "x": dev.from_array("x", np.arange(N, dtype=np.float64)),
        "out": dev.from_array("out", np.zeros(1)),
    }


class TestTdpfReduction:
    @pytest.mark.parametrize("teams", [1, 4])
    @pytest.mark.parametrize("schedule", ["static_cyclic", "dynamic", "guided"])
    def test_sum_across_teams(self, dev, teams, schedule):
        args = make_args(dev)
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                omp.loop(N, body=value_body, uses=("x", "out")),
                schedule=schedule,
                reduction=("add", atomic_finalize),
            )
        )
        omp.launch(dev, tree, num_teams=teams, team_size=32, args=args)
        assert args["out"].read(0) == float(np.arange(N).sum())

    def test_max_reduction(self, dev):
        args = make_args(dev)

        def store_max(tc, ivs_outer, view, total):
            yield from tc.atomic_max(view["out"], 0, total)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                omp.loop(N, body=value_body, uses=("x", "out")),
                reduction=("max", store_max),
            )
        )
        omp.launch(dev, tree, num_teams=2, team_size=32, args=args)
        assert args["out"].read(0) == float(N - 1)

    def test_reduction_requires_leaf(self):
        with pytest.raises(DirectiveNestingError, match="leaf"):
            omp.teams_distribute_parallel_for(
                omp.loop(8, nested=omp.simd(4, body=value_body)),
                reduction=("add", atomic_finalize),
            )

    def test_bad_op_rejected(self):
        with pytest.raises(DirectiveNestingError, match="reduction op"):
            omp.teams_distribute_parallel_for(
                omp.loop(8, body=value_body),
                reduction=("mul", atomic_finalize),
            )


class TestSplitConstructReduction:
    def test_parallel_for_reduction_per_row(self, dev):
        """TD + PF(reduction): one finalize per distribute iteration."""
        x = dev.from_array("x", np.arange(64, dtype=np.float64))
        sums = dev.from_array("sums", np.zeros(4))

        def row_value(tc, ivs, view):
            i, j = ivs
            v = yield from tc.load(view["x"], i * 16 + j)
            return float(v)

        def store_row(tc, ivs_outer, view, total):
            (i,) = ivs_outer
            yield from tc.store(view["sums"], i, total)

        inner = omp.parallel_for(
            omp.loop(16, body=row_value, uses=("x", "sums")),
            reduction=("add", store_row),
        )
        tree = omp.target(omp.teams_distribute(4, nested=inner, uses=()))
        r = omp.launch(dev, tree, num_teams=2, team_size=32,
                       args={"x": x, "sums": sums})
        assert r.cfg.teams_mode is ExecMode.GENERIC
        expect = np.arange(64).reshape(4, 16).sum(axis=1)
        assert np.array_equal(sums.to_numpy(), expect)

    def test_reduction_with_simd_groups(self, dev):
        """Groups fold lanes by shuffle before the cross-group combine...
        for a leaf for-loop with simd_len forced to 1, groups are trivial —
        use a tree WITH simd elsewhere?  For-level reductions are leaf-only,
        so simd_len is 1 by §5.4; this checks that path explicitly."""
        args = make_args(dev)
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                omp.loop(N, body=value_body, uses=("x", "out")),
                reduction=("add", atomic_finalize),
            )
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=8, args=args)
        assert r.cfg.simd_len == 1  # leaf tree: groups forced off
        assert args["out"].read(0) == float(np.arange(N).sum())


class TestWorkshareReducePrimitive:
    @pytest.mark.parametrize("parallel_mode", [ExecMode.SPMD, ExecMode.GENERIC])
    @pytest.mark.parametrize("simd_len", [1, 8])
    def test_primitive_totals(self, dev, parallel_mode, simd_len):
        """Direct driver: executors contribute their tid; all get the total."""
        from repro.gpu.costmodel import nvidia_a100
        from repro.runtime.dispatch import DispatchTable
        from repro.runtime.icv import LaunchConfig
        from repro.runtime.reduction import workshare_reduce
        from repro.runtime.state import RuntimeCounters, TeamRuntime

        cfg = LaunchConfig(1, 32, simd_len, ExecMode.SPMD, parallel_mode,
                           params=nvidia_a100())
        out = dev.alloc("o", 32, np.float64)
        executors = (
            range(32) if parallel_mode is ExecMode.SPMD
            else range(0, 32, cfg.simd_len)
        )
        expect = float(sum(executors))

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, dev.gmem, DispatchTable(),
                                 RuntimeCounters())
            if parallel_mode is ExecMode.GENERIC and tc.tid % cfg.simd_len:
                return  # only leaders execute the region in generic mode
            total = yield from workshare_reduce(tc, rt, float(tc.tid), "add")
            yield from tc.store(out, tc.tid, total)

        dev.launch(entry, 1, 32)
        res = out.to_numpy()
        for t in executors:
            assert res[t] == expect
