"""Property-based tests of the whole lowering stack.

Random loop-nest shapes (trips, group sizes, tightness, schedules, modes)
must all compute the same thing: every (i, j) cell incremented exactly
once.  This catches worksharing gaps, double executions, and protocol races
across the full construct matrix in one sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode


@st.composite
def nest_configs(draw):
    return {
        "outer": draw(st.integers(min_value=1, max_value=40)),
        "inner": draw(st.integers(min_value=0, max_value=40)),
        "simd_len": draw(st.sampled_from([1, 2, 4, 8, 16, 32])),
        "tight": draw(st.booleans()),
        "schedule": draw(st.sampled_from(["static", "static_cyclic", "dynamic", "guided"])),
        "chunk": draw(st.integers(min_value=1, max_value=5)),
        "num_teams": draw(st.integers(min_value=1, max_value=4)),
        "team_size": draw(st.sampled_from([32, 64, 128])),
    }


def build_tree(cfg, inner_trip):
    outer, inner = cfg["outer"], inner_trip

    def tight_body(tc, ivs, view):
        i, j = ivs
        yield from tc.atomic_add(view["hits"], i * max(inner, 1) + j, 1)

    def pre(tc, ivs, view):
        yield from tc.compute("alu")
        return {"base": int(ivs[0]) * max(inner, 1)}

    def loose_body(tc, ivs, view):
        i, j = ivs
        yield from tc.atomic_add(view["hits"], int(view["base"]) + j, 1)

    if cfg["tight"]:
        loop = omp.loop(
            outer,
            nested=omp.simd(inner, body=tight_body, uses=("hits",)),
            uses=(),
        )
    else:
        loop = omp.loop(
            outer,
            pre=pre,
            captures=[("base", "i64")],
            nested=omp.simd(inner, body=loose_body, uses=("hits",)),
            uses=(),
        )
    return omp.target(
        omp.teams_distribute_parallel_for(
            loop, schedule=cfg["schedule"], chunk=cfg["chunk"]
        )
    )


@settings(deadline=None, max_examples=40)
@given(cfg=nest_configs())
def test_every_cell_computed_exactly_once(cfg):
    inner = cfg["inner"]
    dev = Device(nvidia_a100())
    size = max(cfg["outer"] * max(inner, 1), 1)
    hits = dev.from_array("hits", np.zeros(size, dtype=np.int64))
    tree = build_tree(cfg, inner)
    r = omp.launch(
        dev, tree,
        num_teams=cfg["num_teams"],
        team_size=cfg["team_size"],
        simd_len=cfg["simd_len"],
        args={"hits": hits},
    )
    result = hits.to_numpy()
    if inner == 0:
        assert np.all(result == 0)
    else:
        assert np.all(result.reshape(cfg["outer"], inner if inner else 1)[:, :inner] == 1)
    # Mode resolution is structural: tight => SPMD, loose => GENERIC.
    expect_mode = ExecMode.SPMD if cfg["tight"] else ExecMode.GENERIC
    assert r.cfg.parallel_mode is expect_mode


@settings(deadline=None, max_examples=20)
@given(
    trips=st.lists(st.integers(min_value=0, max_value=12), min_size=2, max_size=12),
    simd_len=st.sampled_from([2, 8, 32]),
)
def test_variable_trip_counts_per_outer_iteration(trips, simd_len):
    """Data-dependent inner trips (the SpMV shape): exact coverage even
    when groups in the same warp run different iteration counts."""
    dev = Device(nvidia_a100())
    n = len(trips)
    offsets = np.concatenate([[0], np.cumsum(trips)]).astype(np.int64)
    total = int(offsets[-1])
    hits = dev.from_array("hits", np.zeros(max(total, 1), dtype=np.int64))
    lens = dev.from_array("lens", np.array(trips, dtype=np.int64))
    offs = dev.from_array("offs", offsets)

    def pre(tc, ivs, view):
        (i,) = ivs
        o = yield from tc.load(view["offs"], i)
        return {"base": int(o)}

    def trip(tc, view, i):
        v = yield from tc.load(view["lens"], i)
        return int(v)

    def body(tc, ivs, view):
        i, j = ivs
        yield from tc.atomic_add(view["hits"], int(view["base"]) + j, 1)

    tree = omp.target(
        omp.teams_distribute_parallel_for(
            n,
            pre=pre,
            captures=[("base", "i64")],
            nested=omp.simd(omp.loop(trip, body=body, uses=("lens", "hits"))),
            uses=("offs",),
        )
    )
    omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=simd_len,
               args={"hits": hits, "lens": lens, "offs": offs})
    if total:
        assert np.all(hits.to_numpy()[:total] == 1)
