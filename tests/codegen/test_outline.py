"""Tests for outlining metadata: uses resolution and payload layouts."""

import pytest

from repro.errors import OutliningError
from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import Simd
from repro.codegen.outline import (
    iv_key,
    outline_task,
    resolve_uses,
    subtree_uses,
)


def body(tc, ivs, view):
    yield from tc.compute("alu")


ARGS = ("a", "b", "c")


class TestResolveUses:
    def test_default_is_all_args(self):
        loop = CanonicalLoop(trip_count=2, body=body)
        assert resolve_uses(loop, ARGS) == ARGS

    def test_explicit_subset(self):
        loop = CanonicalLoop(trip_count=2, body=body, uses=("b",))
        assert resolve_uses(loop, ARGS) == ("b",)

    def test_unknown_use_rejected(self):
        loop = CanonicalLoop(trip_count=2, body=body, uses=("z",))
        with pytest.raises(OutliningError, match="undeclared"):
            resolve_uses(loop, ARGS)


class TestSubtreeUses:
    def test_union_preserves_order(self):
        inner = Simd(CanonicalLoop(trip_count=2, body=body, uses=("c", "a")))
        outer = CanonicalLoop(trip_count=4, nested=inner, uses=("b", "a"))
        assert subtree_uses(outer, ARGS) == ("b", "a", "c")

    def test_leaf(self):
        loop = CanonicalLoop(trip_count=2, body=body, uses=("a",))
        assert subtree_uses(loop, ARGS) == ("a",)


class TestOutlineTask:
    def test_layout_order_uses_captures_ivs(self):
        task = outline_task("t", ("a", "b"), (("row", "i64"), ("w", "f64")), depth=2)
        assert task.layout.names == ("a", "b", "row", "w", "__iv0", "__iv1")
        kinds = [k for _, k in task.layout.entries]
        assert kinds == ["buf", "buf", "i64", "f64", "i64", "i64"]
        assert task.nargs == 6

    def test_capture_shadowing_rejected(self):
        with pytest.raises(OutliningError, match="shadows"):
            outline_task("t", ("a",), (("a", "i64"),), depth=0)

    def test_iv_key_format(self):
        assert iv_key(0) == "__iv0"
        assert iv_key(3) == "__iv3"

    def test_zero_depth_no_ivs(self):
        task = outline_task("t", ("a",), (), depth=0)
        assert task.layout.names == ("a",)
