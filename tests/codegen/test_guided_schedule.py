"""Tests for the guided schedule (device-side and end-to-end)."""

import numpy as np
import pytest

from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.runtime.workshare import guided_next


@pytest.fixture
def dev():
    return Device(nvidia_a100())


class TestGuidedNext:
    def test_single_claimant_covers_everything_decreasing(self, dev):
        counter = dev.alloc("ctr", 1, np.int64)
        chunks = []

        def k(tc, counter):
            while True:
                claim = yield from guided_next(tc, counter, 100, num_workers=4)
                if claim is None:
                    return
                chunks.append(claim)

        dev.launch(k, 1, 1, args=(counter,))
        # Full coverage, in order, no overlap.
        flat = [i for lo, hi in chunks for i in range(lo, hi)]
        assert flat == list(range(100))
        sizes = [hi - lo for lo, hi in chunks]
        # Guided chunks shrink (non-strictly) towards min_chunk.
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] > sizes[-1]

    def test_concurrent_claimants_partition(self, dev):
        counter = dev.alloc("ctr", 1, np.int64)
        hits = dev.alloc("hits", 200, np.int64)

        def k(tc, counter, hits):
            while True:
                claim = yield from guided_next(tc, counter, 200, num_workers=8)
                if claim is None:
                    return
                lo, hi = claim
                for i in range(lo, hi):
                    yield from tc.atomic_add(hits, i, 1)

        dev.launch(k, 1, 8, args=(counter, hits))
        assert np.all(hits.to_numpy() == 1)

    def test_min_chunk_respected(self, dev):
        counter = dev.alloc("ctr", 1, np.int64)
        sizes = []

        def k(tc, counter):
            while True:
                claim = yield from guided_next(tc, counter, 37, num_workers=4,
                                               min_chunk=5)
                if claim is None:
                    return
                sizes.append(claim[1] - claim[0])

        dev.launch(k, 1, 1, args=(counter,))
        assert all(s >= 5 or sum(sizes) == 37 for s in sizes)


class TestGuidedEndToEnd:
    def test_guided_tdpf(self, dev):
        n = 256
        x = dev.from_array("x", np.arange(n, dtype=np.float64))
        y = dev.from_array("y", np.zeros(n))

        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["y"], i, v * 2.0)

        tree = omp.target(
            omp.teams_distribute_parallel_for(n, body=body, schedule="guided")
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=64, args={"x": x, "y": y})
        assert np.array_equal(y.to_numpy(), 2.0 * np.arange(n))
        assert r.counters.atomics > 0

    def test_guided_with_simd_groups(self, dev):
        n, m = 32, 8
        x = dev.from_array("x", np.arange(n * m, dtype=np.float64))
        y = dev.from_array("y", np.zeros(n * m))

        def body(tc, ivs, view):
            i, j = ivs
            idx = i * m + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                n, nested=omp.simd(m, body=body), schedule="guided"
            )
        )
        omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=8,
                   args={"x": x, "y": y})
        assert np.array_equal(y.to_numpy(), np.arange(n * m) + 1.0)

    def test_guided_clause_via_pragma(self, dev):
        from repro.codegen.canonical_loop import CanonicalLoop
        from repro.codegen.frontend import pragma

        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["y"], i, v)

        x = dev.from_array("x", np.arange(64, dtype=np.float64))
        y = dev.from_array("y", np.zeros(64))
        tree = pragma(
            "target teams distribute parallel for schedule(guided,2)",
            CanonicalLoop(trip_count=64, body=body),
        )
        omp.launch(dev, tree, num_teams=1, team_size=32, args={"x": x, "y": y})
        assert np.array_equal(y.to_numpy(), np.arange(64))
