"""Tests for schedule(dynamic) worksharing, the collapse extension, and the
simdlen clause resolution at launch."""

import numpy as np
import pytest

from repro.errors import DirectiveNestingError
from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode


@pytest.fixture
def dev():
    return Device(nvidia_a100())


def element(tc, ivs, view):
    i, j = ivs
    idx = i * 16 + j
    v = yield from tc.load(view["x"], idx)
    yield from tc.store(view["y"], idx, v + 1.0)


def make_xy(dev, n):
    return {
        "x": dev.from_array("x", np.arange(n, dtype=np.float64)),
        "y": dev.from_array("y", np.zeros(n)),
    }


class TestDynamicSchedule:
    def test_dynamic_tdpf_leaf(self, dev):
        """Dynamic chunks cover every iteration exactly once."""
        args = make_xy(dev, 256)

        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["y"], i, v + 1.0)

        tree = omp.target(
            omp.teams_distribute_parallel_for(256, body=body, schedule="dynamic", chunk=4)
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=64, args=args)
        assert np.array_equal(args["y"].to_numpy(), np.arange(256) + 1.0)
        assert r.counters.atomics > 0  # claims cost real atomics

    def test_dynamic_with_simd_groups_spmd(self, dev):
        """Group leaders claim; lanes receive the claim via shuffle."""
        args = make_xy(dev, 256)
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                16, nested=omp.simd(16, body=element), schedule="dynamic", chunk=1,
            )
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=8, args=args)
        assert np.array_equal(args["y"].to_numpy(), np.arange(256) + 1.0)
        assert r.cfg.parallel_mode is ExecMode.SPMD

    def test_dynamic_generic_parallel(self, dev):
        """Dynamic for + non-tight simd: leaders claim inside generic mode."""
        args = make_xy(dev, 256)

        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"base": int(ivs[0]) * 16}

        def body(tc, ivs, view):
            i, j = ivs
            idx = int(view["base"]) + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                16,
                pre=pre,
                captures=[("base", "i64")],
                nested=omp.simd(16, body=body),
                schedule="dynamic",
                chunk=2,
                uses=(),
            )
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=8, args=args)
        assert np.array_equal(args["y"].to_numpy(), np.arange(256) + 1.0)
        assert r.cfg.parallel_mode is ExecMode.GENERIC

    def test_dynamic_in_split_construct(self, dev):
        """teams distribute + parallel for schedule(dynamic)."""
        args = make_xy(dev, 256)
        inner = omp.parallel_for(16, body=element, schedule="dynamic", chunk=3)
        tree = omp.target(omp.teams_distribute(16, nested=inner))
        r = omp.launch(dev, tree, num_teams=2, team_size=32, args=args)
        assert np.array_equal(args["y"].to_numpy(), np.arange(256) + 1.0)
        assert r.cfg.teams_mode is ExecMode.GENERIC

    def test_unknown_schedule_rejected(self):
        with pytest.raises(DirectiveNestingError, match="schedule"):
            omp.parallel_for(8, body=element, schedule="runtime")


class TestCollapse:
    def test_collapsed_loop_covers_product_space(self, dev):
        hits = dev.from_array("hits", np.zeros(6 * 7, dtype=np.int64))

        def body(tc, ivs, view):
            i, j = ivs  # decoded component indices
            yield from tc.atomic_add(view["hits"], i * 7 + j, 1)

        lp = omp.collapsed_loop((6, 7), body, uses=("hits",))
        assert lp.trip_count == 42
        tree = omp.target(omp.teams_distribute_parallel_for(lp))
        omp.launch(dev, tree, num_teams=2, team_size=32, args={"hits": hits})
        assert np.all(hits.to_numpy() == 1)

    def test_collapse_inside_simd(self, dev):
        out = dev.from_array("out", np.zeros(4 * 3 * 5, dtype=np.int64))

        def body(tc, ivs, view):
            r, i, j = ivs  # outer iv + two decoded components
            yield from tc.atomic_add(view["out"], (r * 3 + i) * 5 + j, 1)

        inner = omp.simd(omp.collapsed_loop((3, 5), body, uses=("out",)))
        tree = omp.target(omp.teams_distribute_parallel_for(4, nested=inner, uses=()))
        omp.launch(dev, tree, num_teams=1, team_size=32, simd_len=8,
                   args={"out": out})
        assert np.all(out.to_numpy() == 1)


class TestSimdlenHint:
    def test_hint_used_when_launch_omits_simd_len(self, dev):
        args = make_xy(dev, 256)
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                16, nested=omp.simd(16, body=element, simdlen=8)
            )
        )
        r = omp.launch(dev, tree, num_teams=1, team_size=64, args=args)
        assert r.cfg.simd_len == 8
        assert np.array_equal(args["y"].to_numpy(), np.arange(256) + 1.0)

    def test_explicit_simd_len_overrides_hint(self, dev):
        args = make_xy(dev, 256)
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                16, nested=omp.simd(16, body=element, simdlen=8)
            )
        )
        r = omp.launch(dev, tree, num_teams=1, team_size=64, simd_len=4, args=args)
        assert r.cfg.simd_len == 4

    def test_no_hint_defaults_to_one(self, dev):
        args = make_xy(dev, 64)

        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["y"], i, v + 1.0)

        tree = omp.target(omp.teams_distribute_parallel_for(64, body=body))
        r = omp.launch(dev, tree, num_teams=1, team_size=64, args=args)
        assert r.cfg.simd_len == 1


def test_cost_breakdown_report(dev):
    from repro.perf.report import cost_breakdown

    args = make_xy(dev, 256)
    tree = omp.target(
        omp.teams_distribute_parallel_for(16, nested=omp.simd(16, body=element))
    )
    r = omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=8, args=args)
    text = cost_breakdown(r)
    assert "critical path" in text and "%" in text and "wave" in text
