"""Tests for OMPCanonicalLoop: validation, trip counts, iv mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CodegenError
from repro.codegen.canonical_loop import CanonicalLoop, evaluate_trip, from_range


def dummy_body(tc, ivs, view):
    yield from tc.compute("alu")


class TestValidation:
    def test_needs_body_or_nested(self):
        with pytest.raises(CodegenError, match="exactly one"):
            CanonicalLoop(trip_count=4)

    def test_not_both(self):
        from repro.codegen.directives import Simd

        inner = Simd(CanonicalLoop(trip_count=2, body=dummy_body))
        with pytest.raises(CodegenError, match="exactly one"):
            CanonicalLoop(trip_count=4, body=dummy_body, nested=inner)

    def test_pre_requires_nested(self):
        def pre(tc, ivs, view):
            yield from tc.compute()
            return {}

        with pytest.raises(CodegenError, match="pre/post/captures"):
            CanonicalLoop(trip_count=4, body=dummy_body, pre=pre)

    def test_captures_require_pre(self):
        from repro.codegen.directives import Simd

        inner = Simd(CanonicalLoop(trip_count=2, body=dummy_body))
        with pytest.raises(CodegenError, match="captures"):
            CanonicalLoop(trip_count=4, nested=inner, captures=(("x", "i64"),))

    def test_zero_step_rejected(self):
        with pytest.raises(CodegenError, match="step 0"):
            CanonicalLoop(trip_count=4, body=dummy_body, step=0)


class TestProperties:
    def test_tight(self):
        from repro.codegen.directives import Simd

        inner = Simd(CanonicalLoop(trip_count=2, body=dummy_body))
        tight = CanonicalLoop(trip_count=4, nested=inner)
        assert tight.tight

        def pre(tc, ivs, view):
            return {}
            yield

        loose = CanonicalLoop(trip_count=4, nested=inner, pre=pre)
        assert not loose.tight

    def test_user_iv_affine_mapping(self):
        loop = CanonicalLoop(trip_count=5, body=dummy_body, start=10, step=3)
        assert [loop.user_iv(k) for k in range(3)] == [10, 13, 16]

    def test_static_trip(self):
        assert CanonicalLoop(trip_count=7, body=dummy_body).static_trip() == 7
        assert CanonicalLoop(trip_count=lambda v: 7, body=dummy_body).static_trip() is None


class TestEvaluateTrip:
    def _consume(self, gen):
        """Run a trip-count generator outside the scheduler."""
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def test_constant(self):
        loop = CanonicalLoop(trip_count=9, body=dummy_body)
        assert self._consume(evaluate_trip(None, loop, {}, ())) == 9

    def test_negative_constant_rejected(self):
        loop = CanonicalLoop(trip_count=-1, body=dummy_body)
        with pytest.raises(CodegenError, match="negative"):
            self._consume(evaluate_trip(None, loop, {}, ()))

    def test_host_callable(self):
        loop = CanonicalLoop(
            trip_count=lambda view, i: view["n"] - i, body=dummy_body
        )
        assert self._consume(evaluate_trip(None, loop, {"n": 10}, (3,))) == 7

    def test_callable_negative_rejected(self):
        loop = CanonicalLoop(trip_count=lambda view: -2, body=dummy_body)
        with pytest.raises(CodegenError, match="returned"):
            self._consume(evaluate_trip(None, loop, {}, ()))

    def test_device_generator(self, device):
        """Trip counts that load memory run as real device code."""
        import numpy as np

        bounds = device.from_array("b", np.array([3, 11], dtype=np.int64))

        def trip_gen(tc, view, *outer):
            vals = yield from tc.load_vec(view["bounds"], (0, 1))
            return int(vals[1] - vals[0])

        loop = CanonicalLoop(trip_count=trip_gen, body=dummy_body)
        result = []

        def k(tc):
            t = yield from evaluate_trip(tc, loop, {"bounds": bounds}, ())
            result.append(t)

        kc = device.launch(k, 1, 1)
        assert result[0] == 8
        assert kc.total("loads") == 2


class TestFromRange:
    @given(
        start=st.integers(min_value=-50, max_value=50),
        stop=st.integers(min_value=-50, max_value=50),
        step=st.integers(min_value=-7, max_value=7).filter(lambda s: s != 0),
    )
    def test_matches_python_range(self, start, stop, step):
        loop = from_range(start, stop, step, body=dummy_body)
        expected = list(range(start, stop, step))
        assert loop.trip_count == len(expected)
        assert [loop.user_iv(k) for k in range(loop.trip_count)] == expected

    def test_zero_step_rejected(self):
        with pytest.raises(CodegenError):
            from_range(0, 10, 0, body=dummy_body)
