"""Tests for directive-tree construction and nesting validation."""

import pytest

from repro.errors import DirectiveNestingError
from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import (
    ParallelFor,
    Simd,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
    iter_loops,
)


def body(tc, ivs, view):
    yield from tc.compute("alu")


def leaf(trip=4, **kw):
    return CanonicalLoop(trip_count=trip, body=body, **kw)


class TestSimd:
    def test_leaf_only(self):
        with pytest.raises(DirectiveNestingError, match="innermost"):
            Simd(CanonicalLoop(trip_count=4, nested=Simd(leaf())))

    def test_simdlen_validated(self):
        with pytest.raises(DirectiveNestingError):
            Simd(leaf(), simdlen=0)

    def test_reduction_validated(self):
        with pytest.raises(DirectiveNestingError, match="reduction op"):
            Simd(leaf(), reduction=("mul", lambda *a: None))
        with pytest.raises(DirectiveNestingError, match="callable"):
            Simd(leaf(), reduction=("add", 42))

    def test_valid_reduction(self):
        node = Simd(leaf(), reduction=("add", body))
        assert node.reduction[0] == "add"


class TestParallelFor:
    def test_leaf_ok(self):
        assert ParallelFor(leaf()).kind == "parallel_for"

    def test_nested_simd_ok(self):
        ParallelFor(CanonicalLoop(trip_count=4, nested=Simd(leaf())))

    def test_nested_parallel_rejected(self):
        inner = ParallelFor(leaf())
        with pytest.raises(DirectiveNestingError, match="simd"):
            ParallelFor(CanonicalLoop(trip_count=4, nested=inner))


class TestTeamsLevel:
    def test_teams_distribute_accepts_parallel_for(self):
        TeamsDistribute(CanonicalLoop(trip_count=4, nested=ParallelFor(leaf())))

    def test_teams_distribute_rejects_simd_child(self):
        with pytest.raises(DirectiveNestingError, match="parallel for"):
            TeamsDistribute(CanonicalLoop(trip_count=4, nested=Simd(leaf())))

    def test_tdpf_accepts_simd(self):
        TeamsDistributeParallelFor(CanonicalLoop(trip_count=4, nested=Simd(leaf())))

    def test_tdpf_rejects_parallel_for(self):
        with pytest.raises(DirectiveNestingError, match="simd"):
            TeamsDistributeParallelFor(
                CanonicalLoop(trip_count=4, nested=ParallelFor(leaf()))
            )


class TestTarget:
    def test_accepts_teams_constructs(self):
        Target(TeamsDistribute(leaf()))
        Target(TeamsDistributeParallelFor(leaf()))

    def test_rejects_bare_loops(self):
        with pytest.raises(DirectiveNestingError, match="teams"):
            Target(ParallelFor(leaf()))


class TestIterLoops:
    def test_walks_three_levels(self):
        simd = Simd(leaf(trip=2))

        def pre(tc, ivs, view):
            return {}
            yield

        pf = ParallelFor(
            CanonicalLoop(trip_count=3, nested=simd, pre=pre, captures=(("x", "i64"),))
        )
        td = TeamsDistribute(CanonicalLoop(trip_count=4, nested=pf))
        tree = Target(td)
        walked = list(iter_loops(tree))
        assert [d for (_, _, d) in walked] == [0, 1, 2]
        assert [n.kind for (n, _, _) in walked] == [
            "teams_distribute",
            "parallel_for",
            "simd",
        ]
