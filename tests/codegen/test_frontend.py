"""Tests for the pragma-string frontend."""

import pytest

from repro.errors import CodegenError
from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import (
    ParallelFor,
    Simd,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
)
from repro.codegen.frontend import pragma
from repro.runtime.icv import ExecMode


def body(tc, ivs, view):
    yield from tc.compute("alu")


def leaf(**kw):
    return CanonicalLoop(trip_count=4, body=body, **kw)


class TestDirectiveParsing:
    def test_simd(self):
        node = pragma("simd", leaf())
        assert isinstance(node, Simd)

    def test_simd_with_simdlen(self):
        node = pragma("simd simdlen(8)", leaf())
        assert node.simdlen == 8

    def test_parallel_for(self):
        node = pragma("parallel for", leaf())
        assert isinstance(node, ParallelFor)

    def test_parallel_for_schedule(self):
        node = pragma("parallel for schedule(static_cyclic,4)", leaf())
        assert node.schedule == "static_cyclic" and node.chunk == 4

    def test_teams_distribute(self):
        node = pragma("teams distribute", leaf())
        assert isinstance(node, TeamsDistribute)

    def test_combined_tdpf(self):
        node = pragma("teams distribute parallel for", leaf())
        assert isinstance(node, TeamsDistributeParallelFor)

    def test_combined_with_simd_spelling(self):
        inner = Simd(leaf())
        node = pragma(
            "teams distribute parallel for simd",
            CanonicalLoop(trip_count=4, nested=inner),
        )
        assert isinstance(node, TeamsDistributeParallelFor)

    def test_target_wraps_child(self):
        child = pragma("teams distribute parallel for", leaf())
        node = pragma("target", child)
        assert isinstance(node, Target)

    def test_full_target_spelling(self):
        node = pragma("target teams distribute parallel for", leaf())
        assert isinstance(node, Target)
        assert isinstance(node.child, TeamsDistributeParallelFor)

    def test_full_spelling_keeps_clauses(self):
        node = pragma(
            "target teams distribute parallel for schedule(static_cyclic,2)", leaf()
        )
        assert node.child.chunk == 2

    def test_pragma_omp_prefix_stripped(self):
        node = pragma("#pragma omp simd", leaf())
        assert isinstance(node, Simd)

    def test_mode_clause(self):
        node = pragma("parallel for mode(generic)", leaf())
        assert node.mode is ExecMode.GENERIC


class TestErrors:
    def test_unknown_directive(self):
        with pytest.raises(CodegenError, match="unsupported directive"):
            pragma("sections", leaf())

    def test_unknown_clause(self):
        with pytest.raises(CodegenError, match="unknown clause"):
            pragma("simd collapse(2)", leaf())

    def test_loop_directive_needs_loop(self):
        with pytest.raises(CodegenError, match="CanonicalLoop"):
            pragma("simd", "not a loop")

    def test_target_needs_directive(self):
        with pytest.raises(CodegenError, match="directive operand"):
            pragma("target", leaf())

    def test_bad_mode_value(self):
        with pytest.raises(CodegenError, match="execution mode"):
            pragma("parallel for mode(warp)", leaf())

    def test_bad_schedule_kind(self):
        with pytest.raises(CodegenError, match="schedule"):
            pragma("parallel for schedule(wavefront)", leaf())


class TestEndToEnd:
    def test_pragma_program_launches(self, device):
        import numpy as np
        from repro.core import api as omp

        x = device.from_array("x", np.arange(64, dtype=np.float64))
        y = device.from_array("y", np.zeros(64))

        def b(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["y"], i, v + 1)

        tree = pragma(
            "target teams distribute parallel for",
            CanonicalLoop(trip_count=64, body=b),
        )
        omp.launch(device, tree, num_teams=2, team_size=32, args={"x": x, "y": y})
        assert np.array_equal(y.to_numpy(), np.arange(64) + 1.0)
