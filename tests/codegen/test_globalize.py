"""Tests for the variable globalization pass (§4.3)."""

import numpy as np
import pytest

from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import Simd, Target, TeamsDistributeParallelFor
from repro.codegen.globalize import globalized_alloc, plan
from repro.codegen.spmdization import analyze_modes


def body(tc, ivs, view):
    yield from tc.compute("alu")


def pre(tc, ivs, view):
    yield from tc.compute("alu")
    return {"base": 0}


def make_tree(tight: bool) -> Target:
    inner = Simd(CanonicalLoop(trip_count=8, body=body, uses=("x",)))
    kwargs = {} if tight else {"pre": pre, "captures": (("base", "i64"),)}
    return Target(
        TeamsDistributeParallelFor(
            CanonicalLoop(trip_count=4, nested=inner, uses=("y",), **kwargs)
        )
    )


class TestPlan:
    def test_spmd_keeps_everything_in_registers(self):
        tree = make_tree(tight=True)
        p = plan(tree, analyze_modes(tree))
        assert p.promoted == []

    def test_generic_promotes_simd_payload(self):
        tree = make_tree(tight=False)
        p = plan(tree, analyze_modes(tree))
        promoted_vars = {(d.task.split(":")[0], d.var) for d in p.promoted}
        assert ("simd", "x") in promoted_vars
        assert ("simd", "base") in promoted_vars
        # The TDPF microtask payload stays local (teams SPMD).
        assert not any(t.startswith("tdpf") for t, _ in promoted_vars)

    def test_describe_readable(self):
        tree = make_tree(tight=False)
        text = plan(tree, analyze_modes(tree)).describe()
        assert "sharing-space" in text


class TestGlobalizedAlloc:
    def test_shared_promotion_is_team_visible(self, rt_device=None):
        from repro.gpu.costmodel import nvidia_a100
        from repro.gpu.device import Device
        from repro.runtime.dispatch import DispatchTable
        from repro.runtime.icv import ExecMode, LaunchConfig
        from repro.runtime.state import RuntimeCounters, TeamRuntime

        dev = Device(nvidia_a100())
        cfg = LaunchConfig(1, 32, 8, ExecMode.SPMD, ExecMode.GENERIC,
                           params=nvidia_a100())
        counters = RuntimeCounters()
        out = dev.alloc("out", 32, np.float64)

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, dev.gmem, DispatchTable(), counters)
            buf = globalized_alloc(tc, rt, "scratch", 4, np.float64, shared=True)
            if tc.tid == 0:
                yield from tc.store(buf, 0, 9.0)
            yield from tc.syncthreads()
            v = yield from tc.load(buf, 0)
            yield from tc.store(out, tc.tid, v)

        dev.launch(entry, 1, 32)
        assert np.all(out.to_numpy() == 9.0)
        assert counters.globalized_vars == 1

    def test_local_allocation_is_private(self):
        from repro.gpu.costmodel import nvidia_a100
        from repro.gpu.device import Device
        from repro.runtime.dispatch import DispatchTable
        from repro.runtime.icv import ExecMode, LaunchConfig
        from repro.runtime.state import RuntimeCounters, TeamRuntime

        dev = Device(nvidia_a100())
        cfg = LaunchConfig(1, 32, 8, ExecMode.SPMD, ExecMode.SPMD,
                           params=nvidia_a100())
        out = dev.alloc("out", 32, np.float64)

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, dev.gmem, DispatchTable(), RuntimeCounters())
            buf = globalized_alloc(tc, rt, "scratch", 1, np.float64, shared=False)
            yield from tc.store(buf, 0, float(tc.tid))
            yield from tc.syncthreads()
            v = yield from tc.load(buf, 0)
            yield from tc.store(out, tc.tid, v)

        dev.launch(entry, 1, 32)
        assert np.array_equal(out.to_numpy(), np.arange(32, dtype=float))
