"""End-to-end lowering tests: compile directive trees, launch, verify.

These are the core integration tests of the reproduction: every mode
combination must produce numerically identical results, and the runtime
protocols (staging, state machines) must engage exactly when the modes say
they should.
"""

import numpy as np
import pytest

from repro.errors import CodegenError
from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode

N = 256
M = 32


@pytest.fixture
def dev():
    return Device(nvidia_a100())


def make_xy(dev, n=N):
    x = dev.from_array("x", np.arange(n, dtype=np.float64))
    y = dev.from_array("y", np.zeros(n))
    return {"x": x, "y": y}


def leaf_body(tc, ivs, view):
    (i,) = ivs
    v = yield from tc.load(view["x"], i)
    yield from tc.compute("fma")
    yield from tc.store(view["y"], i, 2.0 * v)


def simd_body(tc, ivs, view):
    i, j = ivs
    idx = i * M + j
    v = yield from tc.load(view["x"], idx)
    yield from tc.compute("fma")
    yield from tc.store(view["y"], idx, 2.0 * v)


def base_pre(tc, ivs, view):
    (i,) = ivs
    yield from tc.compute("alu")
    return {"base": i * M}


def simd_body_base(tc, ivs, view):
    i, j = ivs
    idx = int(view["base"]) + j
    v = yield from tc.load(view["x"], idx)
    yield from tc.compute("fma")
    yield from tc.store(view["y"], idx, 2.0 * v)


def expected(n=N):
    return 2.0 * np.arange(n)


class TestLeafPrograms:
    def test_tdpf_leaf(self, dev):
        args = make_xy(dev)
        r = omp.launch(dev, omp.target(omp.teams_distribute_parallel_for(N, body=leaf_body)),
                       num_teams=4, team_size=64, args=args)
        assert np.array_equal(args["y"].to_numpy(), expected())
        assert r.cfg.teams_mode is ExecMode.SPMD

    def test_teams_distribute_leaf_runs_on_main(self, dev):
        args = make_xy(dev, 16)
        tree = omp.target(omp.teams_distribute(16, body=leaf_body))
        r = omp.launch(dev, tree, num_teams=2, team_size=32, args=args)
        assert np.array_equal(args["y"].to_numpy(), expected(16))
        assert r.cfg.teams_mode is ExecMode.GENERIC

    def test_td_pf_two_level(self, dev):
        args = make_xy(dev)
        inner = omp.parallel_for(M, body=lambda tc, ivs, view: simd_body(tc, ivs, view))
        tree = omp.target(omp.teams_distribute(N // M, nested=inner))
        r = omp.launch(dev, tree, num_teams=2, team_size=64, args=args)
        assert np.array_equal(args["y"].to_numpy(), expected())
        assert r.runtime.worker_wakeups > 0


class TestThreeLevelPrograms:
    @pytest.mark.parametrize("simd_len", [1, 4, 8, 32])
    def test_tdpf_tight_simd(self, dev, simd_len):
        args = make_xy(dev)
        tree = omp.target(
            omp.teams_distribute_parallel_for(N // M, nested=omp.simd(M, body=simd_body))
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=simd_len, args=args)
        assert np.array_equal(args["y"].to_numpy(), expected())
        assert r.cfg.parallel_mode is ExecMode.SPMD

    @pytest.mark.parametrize("simd_len", [2, 8, 32])
    def test_tdpf_nontight_simd_generic(self, dev, simd_len):
        args = make_xy(dev)
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                N // M,
                pre=base_pre,
                captures=[("base", "i64")],
                nested=omp.simd(M, body=simd_body_base),
            )
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=simd_len, args=args)
        assert np.array_equal(args["y"].to_numpy(), expected())
        assert r.cfg.parallel_mode is ExecMode.GENERIC
        assert r.runtime.simd_generic > 0
        assert r.runtime.simd_wakeups > 0

    def test_three_nested_levels_generic_everything(self, dev):
        args = make_xy(dev)
        simd8 = omp.simd(8, body=lambda tc, ivs, view: deep_body(tc, ivs, view))

        def deep_body(tc, ivs, view):
            i, j, k = ivs
            idx = i * M + j * 8 + k
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, 2.0 * v)

        inner = omp.parallel_for(M // 8, nested=simd8)
        tree = omp.target(omp.teams_distribute(N // M, nested=inner))
        r = omp.launch(dev, tree, num_teams=2, team_size=64, simd_len=8, args=args)
        assert np.array_equal(args["y"].to_numpy(), expected())
        assert r.cfg.teams_mode is ExecMode.GENERIC

    def test_guarded_spmdization_matches_generic(self, dev):
        """Forcing teams SPMD on a split construct gives the same numbers."""
        results = {}
        for mode in (ExecMode.AUTO, ExecMode.SPMD):
            args = make_xy(dev)
            inner = omp.parallel_for(M, body=simd_body)
            tree = omp.target(
                omp.teams_distribute(N // M, nested=inner),
                teams_mode=mode,
            )
            omp.launch(dev, tree, num_teams=2, team_size=64, args=args)
            results[mode] = args["y"].to_numpy()
        assert np.array_equal(results[ExecMode.AUTO], results[ExecMode.SPMD])
        assert np.array_equal(results[ExecMode.SPMD], expected())


class TestMechanics:
    def test_device_trip_count_callback(self, dev):
        """Inner trip counts may load device memory (the SpMV pattern)."""
        args = make_xy(dev, 64)
        lens = dev.from_array("lens", np.array([5, 9, 17, 33], dtype=np.int64))
        args["lens"] = lens
        hits = dev.from_array("hits", np.zeros(4, dtype=np.int64))
        args["hits"] = hits

        def trip(tc, view, i):
            v = yield from tc.load(view["lens"], i)
            return int(v)

        def count_body(tc, ivs, view):
            i, j = ivs
            yield from tc.atomic_add(view["hits"], i, 1)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                4, nested=omp.simd(omp.loop(trip, body=count_body, uses=("lens", "hits")))
            )
        )
        omp.launch(dev, tree, num_teams=1, team_size=32, simd_len=8, args=args)
        assert np.array_equal(hits.to_numpy(), [5, 9, 17, 33])

    def test_affine_iv_mapping(self, dev):
        marks = dev.from_array("marks", np.zeros(40, dtype=np.int64))

        def mark_body(tc, ivs, view):
            (i,) = ivs
            yield from tc.atomic_add(view["marks"], i, 1)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                omp.loop(10, body=mark_body, start=3, step=4, uses=("marks",))
            )
        )
        omp.launch(dev, tree, num_teams=2, team_size=32, args={"marks": marks})
        m = marks.to_numpy()
        assert np.all(m[3:40:4] == 1)
        assert m.sum() == 10

    def test_reduction_clause_end_to_end(self, dev):
        x = dev.from_array("x", np.arange(128, dtype=np.float64))
        sums = dev.from_array("sums", np.zeros(4))

        def value_body(tc, ivs, view):
            i, j = ivs
            v = yield from tc.load(view["x"], i * 32 + j)
            return float(v)

        def finalize(tc, ivs, view, total):
            (i,) = ivs
            yield from tc.store(view["sums"], i, total)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                4,
                nested=omp.simd(
                    omp.loop(32, body=value_body, uses=("x",)),
                    reduction=("add", finalize),
                ),
                uses=("sums",),
            )
        )
        omp.launch(dev, tree, num_teams=1, team_size=64, simd_len=8,
                   args={"x": x, "sums": sums})
        expect = np.arange(128).reshape(4, 32).sum(axis=1)
        assert np.array_equal(sums.to_numpy(), expect)

    def test_reduction_in_generic_mode(self, dev):
        """Reduction also works when workers run the reduce loop (generic)."""
        x = dev.from_array("x", np.arange(128, dtype=np.float64))
        sums = dev.from_array("sums", np.zeros(4))

        def rpre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"row": int(ivs[0])}

        def value_body(tc, ivs, view):
            i, j = ivs
            v = yield from tc.load(view["x"], int(view["row"]) * 32 + j)
            return float(v)

        def finalize(tc, ivs, view, total):
            (i,) = ivs
            yield from tc.store(view["sums"], i, total)

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                4,
                pre=rpre,
                captures=[("row", "i64")],
                nested=omp.simd(
                    omp.loop(32, body=value_body, uses=("x",)),
                    reduction=("add", finalize),
                ),
                uses=("sums",),
            )
        )
        r = omp.launch(dev, tree, num_teams=1, team_size=64, simd_len=8,
                       args={"x": x, "sums": sums})
        assert r.cfg.parallel_mode is ExecMode.GENERIC
        expect = np.arange(128).reshape(4, 32).sum(axis=1)
        assert np.array_equal(sums.to_numpy(), expect)

    def test_compile_records_tasks(self, dev):
        tree = omp.target(
            omp.teams_distribute_parallel_for(N // M, nested=omp.simd(M, body=simd_body))
        )
        kernel = omp.compile(tree, ("x", "y"), name="k")
        assert len(kernel.tasks) == 2  # microtask + simd loop task
        text = kernel.describe()
        assert "k" in text and "simd" in text

    def test_missing_launch_arg_rejected(self, dev):
        tree = omp.target(omp.teams_distribute_parallel_for(N, body=leaf_body))
        kernel = omp.compile(tree, ("x", "y"))
        with pytest.raises(CodegenError, match="missing"):
            kernel.make_entry(None, dev.gmem, None, {"x": None})

    def test_missing_capture_diagnosed(self, dev):
        args = make_xy(dev)

        def bad_pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {}  # forgets to produce "base"

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                N // M,
                pre=bad_pre,
                captures=[("base", "i64")],
                nested=omp.simd(M, body=simd_body_base),
            )
        )
        with pytest.raises(CodegenError, match="captures"):
            omp.launch(dev, tree, num_teams=1, team_size=32, simd_len=8, args=args)
