"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.costmodel import CostParams, amd_mi100, nvidia_a100
from repro.gpu.device import Device


@pytest.fixture
def device() -> Device:
    """A fresh NVIDIA-profile device per test."""
    return Device(nvidia_a100())


@pytest.fixture
def amd_device() -> Device:
    """A fresh AMD-profile device (64-wide wavefronts, no warp sync)."""
    return Device(amd_mi100())


@pytest.fixture
def small_device() -> Device:
    """A 2-SM device so occupancy/wave effects are visible in tests."""
    return Device(nvidia_a100().with_overrides(num_sms=2))


def run_lanes(device: Device, entry, threads: int = 32, blocks: int = 1, args=()):
    """Launch and return kernel counters (convenience wrapper)."""
    return device.launch(entry, num_blocks=blocks, threads_per_block=threads, args=args)
