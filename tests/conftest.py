"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import default_executor
from repro.gpu.costmodel import CostParams, amd_mi100, nvidia_a100
from repro.gpu.device import Device


@pytest.fixture
def executor():
    """The launch executor under test, resolved from the environment.

    Defaults to :class:`repro.exec.SerialExecutor`; running the suite with
    ``REPRO_EXECUTOR=parallel`` (in-process isolated engine) or
    ``REPRO_EXECUTOR=fork:4`` (forked workers) re-exercises every launch
    through the block-sharding engine — the CI matrix does exactly that.
    """
    return default_executor()


@pytest.fixture
def device(executor) -> Device:
    """A fresh NVIDIA-profile device per test."""
    return Device(nvidia_a100(), executor=executor)


@pytest.fixture
def amd_device(executor) -> Device:
    """A fresh AMD-profile device (64-wide wavefronts, no warp sync)."""
    return Device(amd_mi100(), executor=executor)


@pytest.fixture
def small_device(executor) -> Device:
    """A 2-SM device so occupancy/wave effects are visible in tests."""
    return Device(nvidia_a100().with_overrides(num_sms=2), executor=executor)


def run_lanes(device: Device, entry, threads: int = 32, blocks: int = 1, args=()):
    """Launch and return kernel counters (convenience wrapper)."""
    return device.launch(entry, num_blocks=blocks, threads_per_block=threads, args=args)
