"""Tests for TeamRuntime state and runtime counters."""

import numpy as np
import pytest

from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.runtime.dispatch import DispatchTable
from repro.runtime.state import RuntimeCounters, TeamRuntime

from conftest import make_cfg


class TestTeamRuntime:
    def test_per_block_singleton(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=8)
        seen = []

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, rt_device.gmem, DispatchTable(),
                                 RuntimeCounters())
            seen.append((tc.block_id, id(rt)))
            yield from tc.compute("alu")

        rt_device.launch(entry, 2, 32)
        per_block = {}
        for block, rt_id in seen:
            per_block.setdefault(block, set()).add(rt_id)
        assert all(len(ids) == 1 for ids in per_block.values())
        assert per_block[0] != per_block[1]

    def test_state_buffers_shaped_by_groups(self, rt_device):
        cfg = make_cfg(team_size=64, simd_len=8)
        captured = {}

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, rt_device.gmem, DispatchTable(),
                                 RuntimeCounters())
            captured["simd_fn"] = rt.simd_fn.size
            captured["argptr"] = rt.sharing.argptr.size
            yield from tc.compute("alu")

        rt_device.launch(entry, 1, 64)
        assert captured["simd_fn"] == 8  # 64/8 groups
        assert captured["argptr"] == 8

    def test_globalize_shared_idempotent(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=8)
        counters = RuntimeCounters()
        bufs = []

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, rt_device.gmem, DispatchTable(), counters)
            bufs.append(rt.globalize_shared("tmp", 4, np.float64))
            yield from tc.compute("alu")

        rt_device.launch(entry, 1, 32)
        assert len({id(b) for b in bufs}) == 1
        assert counters.globalized_vars == 1

    def test_dyn_counter_is_per_team(self, rt_device):
        cfg = make_cfg(num_teams=2, team_size=32, simd_len=1)
        names = []

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, rt_device.gmem, DispatchTable(),
                                 RuntimeCounters())
            if tc.tid == 0:
                names.append(rt.dyn_counter.name)
            yield from tc.compute("alu")

        rt_device.launch(entry, 2, 32)
        assert len(set(names)) == 2


class TestRuntimeCounters:
    def test_as_dict_keys_prefixed(self):
        d = RuntimeCounters(parallel_spmd=2, simd_wakeups=7).as_dict()
        assert d["omp_parallel_spmd"] == 2.0
        assert d["omp_simd_wakeups"] == 7.0
        assert all(k.startswith("omp_") for k in d)
