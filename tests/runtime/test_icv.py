"""Unit tests for LaunchConfig validation and derived geometry."""

import pytest

from repro.errors import InvalidSimdGroupError, UnsupportedFeatureError
from repro.gpu.costmodel import amd_mi100, nvidia_a100
from repro.runtime.icv import DEFAULT_SHARING_BYTES, ExecMode, LaunchConfig


def cfg(**kw):
    base = dict(
        num_teams=4,
        team_size=128,
        simd_len=8,
        teams_mode=ExecMode.SPMD,
        parallel_mode=ExecMode.GENERIC,
        params=nvidia_a100(),
    )
    base.update(kw)
    return LaunchConfig(**base)


class TestValidation:
    def test_valid_config(self):
        c = cfg()
        assert c.num_groups == 16
        assert c.groups_per_warp == 4

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_team_counts(self, bad):
        with pytest.raises(InvalidSimdGroupError):
            cfg(num_teams=bad)

    def test_team_size_must_be_warp_multiple(self):
        with pytest.raises(InvalidSimdGroupError, match="multiple of the warp"):
            cfg(team_size=100)

    @pytest.mark.parametrize("bad", [0, 3, 5, 33, 64])
    def test_simd_len_must_divide_warp(self, bad):
        with pytest.raises(InvalidSimdGroupError, match="divide the warp"):
            cfg(simd_len=bad)

    @pytest.mark.parametrize("good", [1, 2, 4, 8, 16, 32])
    def test_valid_simd_lens(self, good):
        assert cfg(simd_len=good).simd_len == good

    def test_auto_modes_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="SPMDization"):
            cfg(teams_mode=ExecMode.AUTO)

    def test_tiny_sharing_space_rejected(self):
        with pytest.raises(InvalidSimdGroupError, match="slot"):
            cfg(sharing_bytes=4)


class TestGeometry:
    def test_spmd_block_dim_is_team_size(self):
        c = cfg(teams_mode=ExecMode.SPMD)
        assert c.block_dim == 128
        assert c.main_tid is None

    def test_generic_block_adds_extra_warp(self):
        c = cfg(teams_mode=ExecMode.GENERIC)
        assert c.block_dim == 128 + 32
        assert c.main_tid == 128  # first lane of the extra warp

    def test_sharing_slots_division(self):
        c = cfg(simd_len=8, sharing_bytes=DEFAULT_SHARING_BYTES)
        assert c.sharing_slots == 256
        assert c.slots_per_group == 256 // 16

    def test_many_groups_starve_slots(self):
        c = cfg(team_size=256, simd_len=2, sharing_bytes=1024)
        # 128 groups, 128 slots: one slot each.
        assert c.slots_per_group == 1

    def test_describe_mentions_modes(self):
        text = cfg().describe()
        assert "spmd" in text and "generic" in text


class TestAmdDemotion:
    def test_generic_simd_demoted_on_amd(self):
        c = LaunchConfig(
            num_teams=2,
            team_size=128,
            simd_len=8,
            teams_mode=ExecMode.SPMD,
            parallel_mode=ExecMode.GENERIC,
            params=amd_mi100(),
        )
        assert c.simd_len == 1
        assert c.simd_demoted

    def test_spmd_simd_kept_on_amd(self):
        c = LaunchConfig(
            num_teams=2,
            team_size=128,
            simd_len=8,
            teams_mode=ExecMode.SPMD,
            parallel_mode=ExecMode.SPMD,
            params=amd_mi100(),
        )
        assert c.simd_len == 8
        assert not c.simd_demoted

    def test_wavefront_team_size_rules(self):
        # team_size must be a multiple of the 64-wide wavefront.
        with pytest.raises(InvalidSimdGroupError):
            LaunchConfig(
                num_teams=1,
                team_size=96,
                simd_len=1,
                teams_mode=ExecMode.SPMD,
                parallel_mode=ExecMode.SPMD,
                params=amd_mi100(),
            )
