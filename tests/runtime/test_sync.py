"""Tests for the synchronization helpers and the AMD barrier restriction."""

import numpy as np
import pytest

from repro.errors import UnsupportedFeatureError
from repro.gpu.costmodel import amd_mi100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode
from repro.runtime.sync import sync_group, sync_warp_named, team_barrier

from conftest import launch_rt, make_cfg


def test_sync_group_converges_group(rt_device):
    cfg = make_cfg(team_size=32, simd_len=8)
    out = rt_device.alloc("o", 1, np.int64)

    def body(tc, rt, out):
        if tc.tid % 8 == 0:
            yield from tc.store(out, 0, 1)
        yield from sync_group(tc, rt)
        v = yield from tc.load(out, 0)
        assert v == 1

    launch_rt(rt_device, cfg, body, args=(out,))


def test_team_barrier(rt_device):
    cfg = make_cfg(team_size=64, simd_len=1, parallel_mode=ExecMode.SPMD)

    def body(tc, rt):
        yield from team_barrier(tc)

    kc, _ = launch_rt(rt_device, cfg, body)
    assert kc.syncblocks == 1


def test_named_warp_barrier_rejected_on_amd():
    dev = Device(amd_mi100())
    cfg = make_cfg(team_size=64, simd_len=1, parallel_mode=ExecMode.SPMD,
                   params=amd_mi100())

    def body(tc, rt):
        yield from sync_warp_named(tc, rt, (1 << 64) - 1)

    with pytest.raises(UnsupportedFeatureError, match="no warp-level"):
        launch_rt(dev, cfg, body)
