"""Protocol-sequence tests: use the event tracer to check that the runtime
emits exactly the communication pattern the paper's figures describe."""

import numpy as np
import pytest

from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.gpu.events import T_LOAD, T_STORE, T_SYNCBLOCK, T_SYNCWARP


def element(tc, ivs, view):
    i, j = ivs
    idx = int(view["base"]) + j
    v = yield from tc.load(view["x"], idx)
    yield from tc.store(view["y"], idx, v + 1.0)


def pre(tc, ivs, view):
    yield from tc.compute("alu")
    return {"base": int(ivs[0]) * 8}


def build_generic_simd_program():
    return omp.target(
        omp.teams_distribute_parallel_for(
            4,
            pre=pre,
            captures=[("base", "i64")],
            nested=omp.simd(8, body=element),
            uses=(),
        )
    )


def launch_traced(tree, simd_len):
    dev = Device(nvidia_a100())
    args = {
        "x": dev.from_array("x", np.arange(32, dtype=np.float64)),
        "y": dev.from_array("y", np.zeros(32)),
    }
    trace = []
    kernel = omp.compile(tree, tuple(sorted(args)))
    from repro.runtime.icv import LaunchConfig
    from repro.runtime.state import RuntimeCounters

    cfg = LaunchConfig(
        num_teams=1, team_size=32, simd_len=simd_len,
        teams_mode=kernel.teams_mode, parallel_mode=kernel.parallel_mode,
        params=dev.params,
    )
    rc = RuntimeCounters()
    entry = kernel.make_entry(cfg, dev.gmem, rc, args)
    dev.launch(
        entry, 1, cfg.block_dim,
        tracer=lambda b, r, t, ev: trace.append((t, ev)),
    )
    assert np.array_equal(args["y"].to_numpy(), np.arange(32) + 1.0)
    return trace, rc


class TestGenericSimdProtocol:
    def test_worker_wait_then_shared_fetch_order(self):
        """A SIMD worker's first events: group barrier, descriptor loads
        from shared memory, argument fetch, then loop body (Fig 6)."""
        trace, rc = launch_traced(build_generic_simd_program(), simd_len=8)
        # Thread 1 is a SIMD worker of group 0.
        worker_events = [ev for t, ev in trace if t == 1]
        from repro.gpu.events import T_COMPUTE

        # First architectural action beyond register arithmetic: the
        # warp-level wait barrier of the state machine.
        first_arch = next(ev for ev in worker_events if ev.tag != T_COMPUTE)
        assert first_arch.tag == T_SYNCWARP
        # Then the descriptor + argument fetches, all from shared memory.
        first_loads = [ev for ev in worker_events if ev.tag == T_LOAD][:3]
        assert all(ev.buf.space == "shared" for ev in first_loads)
        # The worker eventually loads global data (the loop body).
        assert any(
            ev.tag == T_LOAD and ev.buf.space == "global" for ev in worker_events
        )

    def test_leader_stages_before_releasing_group(self):
        """The SIMD main's shared-memory stores (setSimdFn + args) all come
        before its group-release barrier (Fig 4)."""
        trace, _ = launch_traced(build_generic_simd_program(), simd_len=8)
        leader_events = [ev for t, ev in trace if t == 0]
        first_sync = next(
            i for i, ev in enumerate(leader_events) if ev.tag == T_SYNCWARP
        )
        staged = [
            ev for ev in leader_events[:first_sync]
            if ev.tag == T_STORE and ev.buf.space == "shared"
        ]
        # fn id + trip count + argptr + >=1 payload slot.
        assert len(staged) >= 3

    def test_spmd_simd_has_no_shared_staging(self):
        """Tightly nested: no shared-memory traffic at all (§5.4)."""
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                4,
                nested=omp.simd(8, body=lambda tc, ivs, view: tight_element(tc, ivs, view)),
            )
        )

        def tight_element(tc, ivs, view):
            i, j = ivs
            idx = i * 8 + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        trace, rc = launch_traced(tree, simd_len=8)
        shared_traffic = [
            ev for _, ev in trace
            if ev.tag in (T_LOAD, T_STORE) and ev.buf.space == "shared"
        ]
        assert shared_traffic == []
        assert rc.simd_wakeups == 0


class TestGenericTeamsProtocol:
    def test_main_signals_with_block_barriers(self):
        """Teams-generic: the main stages the region then two block
        barriers bracket the workers' execution (the wake and the join)."""
        inner = omp.parallel_for(
            8, body=lambda tc, ivs, view: td_element(tc, ivs, view)
        )

        def td_element(tc, ivs, view):
            i, j = ivs
            idx = i * 8 + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        tree = omp.target(omp.teams_distribute(4, nested=inner))
        trace, rc = launch_traced(tree, simd_len=1)
        main_tid = 32  # first lane of the extra warp
        main_events = [ev for t, ev in trace if t == main_tid]
        barriers = [ev for ev in main_events if ev.tag == T_SYNCBLOCK]
        # 2 per distribute iteration (wake + join) x 4 rows + 1 terminate.
        assert len(barriers) == 2 * 4 + 1
        stores = [
            ev for ev in main_events
            if ev.tag == T_STORE and ev.buf.space == "shared"
        ]
        assert stores, "main must stage fn id + args in shared memory"
        assert rc.worker_wakeups == 4 * 32
