"""Unit tests for the outlined-function dispatch table and if/cascade."""

import numpy as np
import pytest

from repro.errors import RuntimeFault
from repro.runtime.dispatch import (
    INDIRECT_CALL_OPS,
    DispatchTable,
    cascade_cost_ops,
    invoke_microtask,
)
from repro.runtime.payload import PayloadLayout


def empty_layout():
    return PayloadLayout.build([])


def dummy_task(tc, *args):
    yield from tc.compute("alu")
    return "done"


class TestTable:
    def test_register_assigns_sequential_ids_from_one(self):
        t = DispatchTable()
        a = t.register(dummy_task, empty_layout(), "a")
        b = t.register(dummy_task, empty_layout(), "b")
        assert (a, b) == (1, 2)  # 0 is the null/termination id

    def test_lookup(self):
        t = DispatchTable()
        fn_id = t.register(dummy_task, empty_layout(), "a", kind="simd")
        info = t.lookup(fn_id)
        assert info.name == "a" and info.kind == "simd"

    def test_lookup_unknown_faults(self):
        with pytest.raises(RuntimeFault, match="unknown outlined function"):
            DispatchTable().lookup(7)

    def test_known_ids_exclude_external(self):
        t = DispatchTable()
        a = t.register(dummy_task, empty_layout(), "a")
        b = t.register(dummy_task, empty_layout(), "b", known=False)
        assert t.known_ids() == (a,)

    def test_len(self):
        t = DispatchTable()
        t.register(dummy_task, empty_layout(), "a")
        assert len(t) == 1

    def test_reduction_recorded(self):
        t = DispatchTable()
        fn = t.register(dummy_task, empty_layout(), "r", reduction="add")
        assert t.lookup(fn).reduction == "add"


class TestCascadeCost:
    def test_cost_grows_with_position(self):
        t = DispatchTable()
        ids = [t.register(dummy_task, empty_layout(), f"t{i}") for i in range(4)]
        costs = [cascade_cost_ops(t, i) for i in ids]
        assert costs == [1, 2, 3, 4]

    def test_external_pays_indirect(self):
        t = DispatchTable()
        t.register(dummy_task, empty_layout(), "a")
        ext = t.register(dummy_task, empty_layout(), "x", known=False)
        assert cascade_cost_ops(t, ext) == 1 + INDIRECT_CALL_OPS


class TestInvocation:
    def test_invoke_runs_task_and_returns(self, device):
        t = DispatchTable()
        out = device.alloc("o", 1, np.float64)

        def task(tc, value):
            yield from tc.store(out, 0, value)
            return value * 2

        fn = t.register(task, empty_layout(), "task")
        results = device.alloc("r", 1, np.float64)

        def k(tc):
            r = yield from invoke_microtask(tc, t, fn, 21.0)
            yield from tc.store(results, 0, r)

        device.launch(k, 1, 1)
        assert out.read(0) == 21.0 and results.read(0) == 42.0

    def test_external_invocation_adds_rounds(self, device):
        known_rounds = {}
        for known in (True, False):
            t = DispatchTable()

            def task(tc):
                yield from tc.compute("alu")

            fn = t.register(task, empty_layout(), "t", known=known)

            def k(tc):
                yield from invoke_microtask(tc, t, fn)

            kc = device.launch(k, 1, 32)
            known_rounds[known] = kc.rounds
        assert known_rounds[False] > known_rounds[True]
