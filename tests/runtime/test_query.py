"""Tests for the omp_get_* query functions."""

import numpy as np
import pytest

from repro.gpu.costmodel import amd_mi100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode
from repro.runtime.query import (
    omp_get_num_teams,
    omp_get_num_threads,
    omp_get_simd_lane,
    omp_get_simd_len,
    omp_get_team_num,
    omp_get_thread_num,
    omp_in_simd_demoted_mode,
)

from conftest import launch_rt, make_cfg


def test_identity_queries(rt_device):
    cfg = make_cfg(num_teams=3, team_size=64, simd_len=8)
    rows = []

    def body(tc, rt):
        rows.append(
            (
                tc.block_id,
                tc.tid,
                omp_get_num_teams(tc, rt),
                omp_get_team_num(tc, rt),
                omp_get_num_threads(tc, rt),
                omp_get_thread_num(tc, rt),
                omp_get_simd_lane(tc, rt),
                omp_get_simd_len(tc, rt),
            )
        )
        yield from tc.compute("alu")

    launch_rt(rt_device, cfg, body)
    assert len(rows) == 3 * 64
    for block, tid, nteams, team, nthreads, thread, lane, slen in rows:
        assert nteams == 3
        assert team == block
        assert nthreads == 8  # 64 threads / groups of 8
        assert thread == tid // 8
        assert lane == tid % 8
        assert slen == 8


def test_demotion_query_on_amd():
    dev = Device(amd_mi100())
    cfg = make_cfg(team_size=64, simd_len=8, parallel_mode=ExecMode.GENERIC,
                   params=amd_mi100())
    flags = []

    def body(tc, rt):
        flags.append(omp_in_simd_demoted_mode(tc, rt))
        yield from tc.compute("alu")

    launch_rt(dev, cfg, body)
    assert all(flags)


def test_group_size_one_makes_every_thread_an_omp_thread(rt_device):
    cfg = make_cfg(team_size=32, simd_len=1)
    ids = []

    def body(tc, rt):
        ids.append((omp_get_thread_num(tc, rt), omp_get_num_threads(tc, rt)))
        yield from tc.compute("alu")

    launch_rt(rt_device, cfg, body)
    assert sorted(t for t, _ in ids) == list(range(32))
    assert all(n == 32 for _, n in ids)
