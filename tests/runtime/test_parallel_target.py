"""Protocol tests for ``__target_init``, the team worker state machine, and
``__parallel`` across both teams modes (Figs 3 and 5)."""

import numpy as np
import pytest

from repro.runtime.dispatch import DispatchTable
from repro.runtime.icv import ExecMode
from repro.runtime.parallel import parallel
from repro.runtime.payload import PayloadLayout
from repro.runtime.state import TeamRuntime
from repro.runtime.target import (
    ROLE_ALL,
    ROLE_MAIN,
    ROLE_RETIRED,
    ROLE_WORKER,
    target_deinit,
    target_init,
    team_worker_loop,
)

from conftest import launch_rt, make_cfg


def target_entry(cfg, device, table, counters, main_body):
    """Standard target-region skeleton used by codegen's lowering."""

    def entry(tc):
        rt = TeamRuntime.get(tc, cfg, device.gmem, table, counters)
        role = yield from target_init(tc, rt)
        if role == ROLE_RETIRED:
            return
        if role == ROLE_WORKER:
            yield from team_worker_loop(tc, rt)
            return
        yield from main_body(tc, rt)
        if role == ROLE_MAIN:
            yield from target_deinit(tc, rt)

    return entry


def register_microtask(table, out, uses_value=False):
    entries = [("v", "i64")] if uses_value else []
    layout = PayloadLayout.build(entries)

    def microtask(tc, rt, values):
        mark = int(values["v"]) if uses_value else 1
        yield from tc.atomic_add(out, tc.tid, mark)

    return table.register(microtask, layout, "micro", kind="parallel")


class TestRoles:
    def test_generic_roles(self, rt_device):
        cfg = make_cfg(team_size=64, simd_len=1, teams_mode=ExecMode.GENERIC,
                       parallel_mode=ExecMode.SPMD)
        roles = {}

        def body(tc, rt):
            role = yield from target_init(tc, rt)
            roles[tc.tid] = role
            # Avoid the protocol: just exit (no parallel regions).
            if role == ROLE_MAIN:
                yield from target_deinit(tc, rt)
            elif role == ROLE_WORKER:
                yield from team_worker_loop(tc, rt)

        launch_rt(rt_device, cfg, body)
        assert roles[64] == ROLE_MAIN
        assert all(roles[t] == ROLE_WORKER for t in range(64))
        assert all(roles[t] == ROLE_RETIRED for t in range(65, 96))

    def test_spmd_roles(self, rt_device):
        cfg = make_cfg(team_size=64, simd_len=1, teams_mode=ExecMode.SPMD,
                       parallel_mode=ExecMode.SPMD)
        roles = {}

        def body(tc, rt):
            role = yield from target_init(tc, rt)
            roles[tc.tid] = role
            yield from tc.compute("alu")

        launch_rt(rt_device, cfg, body)
        assert all(r == ROLE_ALL for r in roles.values())


class TestGenericTeamsProtocol:
    def _run(self, device, n_regions, team_size=64):
        cfg = make_cfg(team_size=team_size, simd_len=1,
                       teams_mode=ExecMode.GENERIC, parallel_mode=ExecMode.SPMD)
        table = DispatchTable()
        out = device.alloc("out", team_size, np.int64)
        fn = register_microtask(table, out, uses_value=True)

        def main_body(tc, rt):
            for region in range(n_regions):
                yield from parallel(tc, rt, fn, {"v": region + 1})

        from repro.runtime.state import RuntimeCounters

        counters = RuntimeCounters()
        entry = target_entry(cfg, device, table, counters, main_body)
        kc = device.launch(entry, cfg.num_teams, cfg.block_dim)
        return out, counters, kc

    def test_single_parallel_region(self, rt_device):
        out, rc, _ = self._run(rt_device, 1)
        assert np.all(out.to_numpy() == 1)
        assert rc.worker_wakeups == 64

    def test_multiple_parallel_regions(self, rt_device):
        out, rc, _ = self._run(rt_device, 3)
        # Each region adds its own mark: 1 + 2 + 3.
        assert np.all(out.to_numpy() == 6)
        assert rc.worker_wakeups == 3 * 64
        assert rc.parallel_spmd == 3

    def test_no_parallel_region_terminates_cleanly(self, rt_device):
        out, rc, _ = self._run(rt_device, 0)
        assert np.all(out.to_numpy() == 0)
        assert rc.worker_wakeups == 0

    def test_main_thread_does_not_execute_region(self, rt_device):
        """The team main waits at the join barrier; only workers run."""
        cfg = make_cfg(team_size=32, simd_len=1, teams_mode=ExecMode.GENERIC,
                       parallel_mode=ExecMode.SPMD)
        table = DispatchTable()
        executors = rt_device.alloc("ex", 64, np.int64)
        layout = PayloadLayout.build([])

        def microtask(tc, rt, values):
            yield from tc.store(executors, tc.tid, 1)

        fn = table.register(microtask, layout, "m", kind="parallel")

        def main_body(tc, rt):
            yield from parallel(tc, rt, fn, {})

        from repro.runtime.state import RuntimeCounters

        entry = target_entry(cfg, rt_device, table, RuntimeCounters(), main_body)
        rt_device.launch(entry, 1, cfg.block_dim)
        ex = executors.to_numpy()
        assert np.all(ex[:32] == 1)
        assert np.all(ex[32:] == 0)  # main + fillers never ran the microtask


class TestSpmdTeamsProtocol:
    def test_all_threads_execute_region(self, rt_device):
        cfg = make_cfg(team_size=64, simd_len=1, teams_mode=ExecMode.SPMD,
                       parallel_mode=ExecMode.SPMD)
        table = DispatchTable()
        out = rt_device.alloc("out", 64, np.int64)
        fn = register_microtask(table, out)

        def body(tc, rt):
            role = yield from target_init(tc, rt)
            assert role == ROLE_ALL
            yield from parallel(tc, rt, fn, {})

        kc, rc = launch_rt(rt_device, cfg, body, table=table)
        assert np.all(out.to_numpy() == 1)
        assert rc.parallel_spmd == 1
        assert rc.worker_wakeups == 0

    def test_multi_team_counts(self, rt_device):
        cfg = make_cfg(num_teams=4, team_size=32, simd_len=1,
                       teams_mode=ExecMode.SPMD, parallel_mode=ExecMode.SPMD)
        table = DispatchTable()
        out = rt_device.alloc("out", 1, np.int64)
        layout = PayloadLayout.build([])

        def microtask(tc, rt, values):
            yield from tc.atomic_add(out, 0, 1)

        fn = table.register(microtask, layout, "m", kind="parallel")

        def body(tc, rt):
            yield from target_init(tc, rt)
            yield from parallel(tc, rt, fn, {})

        kc, rc = launch_rt(rt_device, cfg, body, table=table)
        assert out.read(0) == 4 * 32
        assert rc.parallel_spmd == 4  # counted once per team
