"""Unit and property tests for payload packing/unpacking."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PayloadError
from repro.gpu.memory import GlobalMemory
from repro.runtime.payload import (
    PayloadLayout,
    bits_to_f64,
    bits_to_i64,
    f64_to_bits,
    i64_to_bits,
)


class TestBitCasts:
    @given(st.floats(allow_nan=False, allow_infinity=True, width=64))
    def test_f64_roundtrip(self, value):
        assert bits_to_f64(f64_to_bits(value)) == value

    def test_nan_roundtrip(self):
        assert math.isnan(bits_to_f64(f64_to_bits(float("nan"))))

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_i64_roundtrip(self, value):
        assert bits_to_i64(i64_to_bits(value)) == value

    def test_negative_int_bits_fit_uint64(self):
        bits = i64_to_bits(-1)
        assert 0 <= bits < 2**64


class TestLayout:
    def test_build_rejects_unknown_kind(self):
        with pytest.raises(PayloadError, match="unknown payload kind"):
            PayloadLayout.build([("x", "f32")])

    def test_names_and_len(self):
        layout = PayloadLayout.build([("a", "buf"), ("b", "i64")])
        assert layout.names == ("a", "b")
        assert len(layout) == 2

    def test_pack_unpack_roundtrip(self):
        g = GlobalMemory()
        buf = g.alloc("data", 16, np.float64)
        layout = PayloadLayout.build(
            [("data", "buf"), ("scale", "f64"), ("offset", "i64")]
        )
        slots = layout.pack({"data": buf, "scale": 2.5, "offset": -7}, g)
        assert all(isinstance(s, int) for s in slots)
        out = layout.unpack(slots, g)
        assert out["data"] is buf
        assert out["scale"] == 2.5
        assert out["offset"] == -7

    def test_pack_missing_value(self):
        layout = PayloadLayout.build([("x", "f64")])
        with pytest.raises(PayloadError, match="missing"):
            layout.pack({}, GlobalMemory())

    def test_pack_buf_kind_type_checked(self):
        layout = PayloadLayout.build([("x", "buf")])
        with pytest.raises(PayloadError, match="declared 'buf'"):
            layout.pack({"x": 3.0}, GlobalMemory())

    def test_unpack_arity_checked(self):
        layout = PayloadLayout.build([("x", "f64")])
        with pytest.raises(PayloadError, match="arity"):
            layout.unpack([1, 2], GlobalMemory())

    def test_shared_buffer_registered_on_pack(self):
        from repro.gpu.memory import Buffer

        g = GlobalMemory()
        sh = Buffer("sh", "shared", 4, np.uint64)
        layout = PayloadLayout.build([("sh", "buf")])
        slots = layout.pack({"sh": sh}, g)
        assert g.lookup(slots[0]) is sh

    @given(
        scale=st.floats(allow_nan=False, allow_infinity=False),
        offset=st.integers(min_value=-(2**62), max_value=2**62),
    )
    def test_roundtrip_property(self, scale, offset):
        g = GlobalMemory()
        layout = PayloadLayout.build([("s", "f64"), ("o", "i64")])
        out = layout.unpack(layout.pack({"s": scale, "o": offset}, g), g)
        assert out["s"] == scale and out["o"] == offset

    def test_slots_survive_uint64_buffer_storage(self):
        """Slots written to a uint64 device buffer read back identically."""
        g = GlobalMemory()
        data = g.alloc("data", 4, np.float64)
        layout = PayloadLayout.build([("data", "buf"), ("v", "f64"), ("n", "i64")])
        slots = layout.pack({"data": data, "v": -1.5, "n": -42}, g)
        staging = g.alloc("staging", len(slots), np.uint64)
        for i, s in enumerate(slots):
            staging.write(i, s)
        back = [int(staging.read(i)) for i in range(len(slots))]
        out = layout.unpack(back, g)
        assert out["data"] is data and out["v"] == -1.5 and out["n"] == -42
