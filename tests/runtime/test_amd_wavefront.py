"""AMD-profile behaviour: 64-wide wavefronts, SPMD simd, generic demotion."""

import numpy as np
import pytest

from repro.core import api as omp
from repro.gpu.costmodel import amd_mi100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode, LaunchConfig


@pytest.fixture
def dev():
    return Device(amd_mi100())


def element(tc, ivs, view):
    i, j = ivs
    idx = i * 64 + j
    v = yield from tc.load(view["x"], idx)
    yield from tc.store(view["y"], idx, v + 1.0)


def make_args(dev, n):
    return {
        "x": dev.from_array("x", np.arange(n, dtype=np.float64)),
        "y": dev.from_array("y", np.zeros(n)),
    }


class TestWavefrontGroups:
    @pytest.mark.parametrize("simd_len", [2, 8, 64])
    def test_spmd_simd_group_sizes_up_to_64(self, dev, simd_len):
        """Wavefront-wide SIMD groups work in SPMD mode (divisors of 64)."""
        args = make_args(dev, 8 * 64)
        tree = omp.target(
            omp.teams_distribute_parallel_for(8, nested=omp.simd(64, body=element))
        )
        r = omp.launch(dev, tree, num_teams=2, team_size=128,
                       simd_len=simd_len, args=args)
        assert np.array_equal(args["y"].to_numpy(), np.arange(8 * 64) + 1.0)
        assert r.cfg.simd_len == simd_len
        assert r.cfg.groups_per_warp == 64 // simd_len

    def test_simd_len_32_valid_on_amd(self):
        """32 divides the 64-wide wavefront, so it is a legal group size."""
        cfg = LaunchConfig(1, 64, 32, ExecMode.SPMD, ExecMode.SPMD,
                           params=amd_mi100())
        assert cfg.num_groups == 2

    def test_generic_teams_extra_wavefront(self, dev):
        """Generic teams mode adds a full 64-lane wavefront for the main."""
        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["y"], i, v + 1.0)

        args = make_args(dev, 64)
        tree = omp.target(omp.teams_distribute(64, body=body))
        r = omp.launch(dev, tree, num_teams=1, team_size=64, args=args)
        assert r.cfg.block_dim == 64 + 64
        assert np.array_equal(args["y"].to_numpy(), np.arange(64) + 1.0)

    def test_generic_parallel_demotes_but_generic_teams_works(self, dev):
        """§5.4.1: only the *parallel-level* generic mode needs wavefront
        barriers; the teams-level state machine (block barriers) works."""
        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"base": int(ivs[0]) * 64}

        def body(tc, ivs, view):
            i, j = ivs
            idx = int(view["base"]) + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        args = make_args(dev, 4 * 64)
        inner = omp.parallel_for(
            omp.loop(1, nested=omp.simd(64, body=body), pre=None)
        )
        # Split construct: teams generic; inner simd tight => parallel SPMD
        # is fine on AMD, no demotion.
        def strip_body(tc, ivs, view):
            i, _m, j = ivs
            idx = i * 64 + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v + 1.0)

        inner = omp.parallel_for(
            omp.loop(1, nested=omp.simd(64, body=strip_body))
        )
        tree = omp.target(omp.teams_distribute(4, nested=inner))
        r = omp.launch(dev, tree, num_teams=1, team_size=64, simd_len=8, args=args)
        assert np.array_equal(args["y"].to_numpy(), np.arange(4 * 64) + 1.0)
        assert r.cfg.teams_mode is ExecMode.GENERIC
        assert not r.cfg.simd_demoted
        assert r.runtime.worker_wakeups > 0
