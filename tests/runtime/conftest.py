"""Helpers for driving the OpenMP runtime directly (below codegen)."""

from __future__ import annotations

import pytest

from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device
from repro.runtime.dispatch import DispatchTable
from repro.runtime.icv import ExecMode, LaunchConfig
from repro.runtime.state import RuntimeCounters, TeamRuntime


def make_cfg(
    num_teams=1,
    team_size=64,
    simd_len=8,
    teams_mode=ExecMode.SPMD,
    parallel_mode=ExecMode.GENERIC,
    params=None,
    sharing_bytes=2048,
):
    return LaunchConfig(
        num_teams=num_teams,
        team_size=team_size,
        simd_len=simd_len,
        teams_mode=teams_mode,
        parallel_mode=parallel_mode,
        params=params or nvidia_a100(),
        sharing_bytes=sharing_bytes,
    )


def launch_rt(device, cfg, body, table=None, counters=None, args=()):
    """Launch ``body(tc, rt, *args)`` on every hardware thread of the league.

    Returns ``(kernel_counters, runtime_counters)``.
    """
    table = table if table is not None else DispatchTable()
    counters = counters if counters is not None else RuntimeCounters()

    def entry(tc):
        rt = TeamRuntime.get(tc, cfg, device.gmem, table, counters)
        yield from body(tc, rt, *args)

    kc = device.launch(entry, cfg.num_teams, cfg.block_dim,
                       side_state=(counters,))
    return kc, counters


@pytest.fixture
def rt_device():
    return Device(nvidia_a100())
