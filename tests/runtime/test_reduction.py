"""Tests for the reduction extension: group, warp, and team reductions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RuntimeFault
from repro.runtime.icv import ExecMode
from repro.runtime.reduction import simd_group_reduce, team_reduce, warp_reduce

from conftest import launch_rt, make_cfg


class TestGroupReduce:
    @pytest.mark.parametrize("simd_len", [2, 4, 8, 16, 32])
    def test_sum_per_group(self, rt_device, simd_len):
        cfg = make_cfg(team_size=32, simd_len=simd_len)
        out = rt_device.alloc("out", 32, np.float64)

        def body(tc, rt, out):
            total = yield from simd_group_reduce(tc, rt, float(tc.tid), "add")
            yield from tc.store(out, tc.tid, total)

        launch_rt(rt_device, cfg, body, args=(out,))
        res = out.to_numpy()
        for g in range(32 // simd_len):
            expect = sum(range(g * simd_len, (g + 1) * simd_len))
            assert np.all(res[g * simd_len : (g + 1) * simd_len] == expect)

    def test_max_and_min(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=8)
        out = rt_device.alloc("out", 64, np.float64)

        def body(tc, rt, out):
            hi = yield from simd_group_reduce(tc, rt, float(tc.tid), "max")
            lo = yield from simd_group_reduce(tc, rt, float(tc.tid), "min")
            yield from tc.store(out, tc.tid, hi)
            yield from tc.store(out, 32 + tc.tid, lo)

        launch_rt(rt_device, cfg, body, args=(out,))
        res = out.to_numpy()
        for g in range(4):
            assert np.all(res[g * 8 : (g + 1) * 8] == g * 8 + 7)
            assert np.all(res[32 + g * 8 : 32 + (g + 1) * 8] == g * 8)

    def test_unknown_op(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=2)

        def body(tc, rt):
            yield from simd_group_reduce(tc, rt, 1.0, "xor")

        with pytest.raises(RuntimeFault, match="unknown reduction op"):
            launch_rt(rt_device, cfg, body)


class TestWarpReduce:
    def test_full_warp_sum(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=1, parallel_mode=ExecMode.SPMD)
        out = rt_device.alloc("out", 32, np.float64)

        def body(tc, rt, out):
            total = yield from warp_reduce(tc, float(tc.lane_id))
            yield from tc.store(out, tc.tid, total)

        launch_rt(rt_device, cfg, body, args=(out,))
        assert np.all(out.to_numpy() == sum(range(32)))


class TestTeamReduce:
    @pytest.mark.parametrize("team_size", [32, 64, 128])
    def test_team_sum(self, rt_device, team_size):
        cfg = make_cfg(team_size=team_size, simd_len=1,
                       parallel_mode=ExecMode.SPMD)
        out = rt_device.alloc("out", team_size, np.float64)

        def body(tc, rt, out):
            total = yield from team_reduce(tc, rt, float(tc.tid), "add")
            yield from tc.store(out, tc.tid, total)

        launch_rt(rt_device, cfg, body, args=(out,))
        assert np.all(out.to_numpy() == sum(range(team_size)))

    def test_team_max(self, rt_device):
        cfg = make_cfg(team_size=64, simd_len=1, parallel_mode=ExecMode.SPMD)
        out = rt_device.alloc("out", 64, np.float64)

        def body(tc, rt, out):
            total = yield from team_reduce(tc, rt, float((tc.tid * 13) % 64), "max")
            yield from tc.store(out, tc.tid, total)

        launch_rt(rt_device, cfg, body, args=(out,))
        assert np.all(out.to_numpy() == 63.0)


@settings(deadline=None, max_examples=20)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=32,
        max_size=32,
    ),
    op=st.sampled_from(["add", "max", "min"]),
)
def test_group_reduce_matches_numpy(values, op):
    """Property: group reduction equals the NumPy reduction of the inputs."""
    from repro.gpu.costmodel import nvidia_a100
    from repro.gpu.device import Device

    dev = Device(nvidia_a100())
    cfg = make_cfg(team_size=32, simd_len=32)
    out = dev.alloc("out", 1, np.float64)
    vals = dev.from_array("vals", np.array(values))

    def body(tc, rt, out, vals):
        v = yield from tc.load(vals, tc.tid)
        total = yield from simd_group_reduce(tc, rt, float(v), op)
        if tc.tid == 0:
            yield from tc.store(out, 0, total)

    launch_rt(dev, cfg, body, args=(out, vals))
    expect = {"add": np.sum, "max": np.max, "min": np.min}[op](values)
    assert out.read(0) == pytest.approx(expect, rel=1e-9, abs=1e-9)
