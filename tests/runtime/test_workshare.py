"""Unit and property tests for the worksharing schedules."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import RuntimeFault
from repro.runtime.workshare import (
    distribute_indices,
    dynamic_next,
    for_indices,
    schedule_indices,
    static_block,
    static_cyclic,
)


class TestStaticBlock:
    def test_even_split(self):
        assert list(static_block(8, 0, 2)) == [0, 1, 2, 3]
        assert list(static_block(8, 1, 2)) == [4, 5, 6, 7]

    def test_remainder_goes_to_low_workers(self):
        sizes = [len(static_block(10, w, 3)) for w in range(3)]
        assert sizes == [4, 3, 3]

    def test_empty_for_excess_workers(self):
        assert list(static_block(2, 3, 8)) == []

    def test_invalid_workers(self):
        with pytest.raises(RuntimeFault):
            static_block(8, 0, 0)


class TestStaticCyclic:
    def test_chunk_one_round_robin(self):
        assert static_cyclic(10, 0, 4) == [0, 4, 8]
        assert static_cyclic(10, 3, 4) == [3, 7]

    def test_chunked(self):
        assert static_cyclic(12, 0, 2, chunk=3) == [0, 1, 2, 6, 7, 8]
        assert static_cyclic(12, 1, 2, chunk=3) == [3, 4, 5, 9, 10, 11]

    def test_partial_last_chunk(self):
        assert static_cyclic(7, 1, 2, chunk=3) == [3, 4, 5]
        assert static_cyclic(8, 1, 2, chunk=3) == [3, 4, 5]

    def test_invalid_chunk(self):
        with pytest.raises(RuntimeFault):
            static_cyclic(8, 0, 2, chunk=0)


class TestDispatchers:
    def test_schedule_by_name(self):
        assert list(schedule_indices("static", 4, 0, 2)) == [0, 1]
        assert schedule_indices("static_cyclic", 4, 0, 2) == [0, 2]

    def test_unknown_schedule(self):
        with pytest.raises(RuntimeFault, match="unknown"):
            schedule_indices("guided", 4, 0, 2)

    def test_distribute_defaults_contiguous(self):
        assert list(distribute_indices(6, 1, 3)) == [2, 3]

    def test_for_defaults_cyclic(self):
        assert for_indices(6, 1, 3) == [1, 4]


@given(
    trip=st.integers(min_value=0, max_value=500),
    workers=st.integers(min_value=1, max_value=64),
    schedule=st.sampled_from(["static", "static_cyclic"]),
    chunk=st.integers(min_value=1, max_value=7),
)
def test_schedules_partition_iteration_space(trip, workers, schedule, chunk):
    """Every iteration is assigned to exactly one worker, in order."""
    seen = []
    for w in range(workers):
        own = list(schedule_indices(schedule, trip, w, workers, chunk))
        assert own == sorted(own)
        seen.extend(own)
    assert sorted(seen) == list(range(trip))


@given(
    trip=st.integers(min_value=1, max_value=300),
    workers=st.integers(min_value=1, max_value=32),
)
def test_static_block_is_balanced(trip, workers):
    sizes = [len(static_block(trip, w, workers)) for w in range(workers)]
    assert max(sizes) - min(sizes) <= 1


class TestDynamic:
    def test_dynamic_covers_all_iterations(self, device):
        counter = device.alloc("ctr", 1, np.int64)
        hits = device.alloc("hits", 100, np.int64)

        def k(tc, counter, hits):
            while True:
                claim = yield from dynamic_next(tc, counter, 100, chunk=3)
                if claim is None:
                    return
                lo, hi = claim
                for i in range(lo, hi):
                    yield from tc.atomic_add(hits, i, 1)

        device.launch(k, 2, 32, args=(counter, hits))
        assert np.all(hits.to_numpy() == 1)

    def test_dynamic_costs_atomics(self, device):
        counter = device.alloc("ctr", 1, np.int64)

        def k(tc, counter):
            while (yield from dynamic_next(tc, counter, 8, chunk=1)) is not None:
                pass

        kc = device.launch(k, 1, 4, args=(counter,))
        assert kc.atomics >= 8
