"""Protocol tests for ``__simd``, ``__simd_loop`` and the worker state
machine, driven directly against the runtime (below codegen)."""

import numpy as np
import pytest

from repro.runtime.dispatch import DispatchTable
from repro.runtime.icv import ExecMode
from repro.runtime.mapping import is_simd_group_leader, simdmask
from repro.runtime.payload import PayloadLayout
from repro.runtime.simd import simd, simd_loop, simd_state_machine
from repro.runtime.state import RuntimeCounters

from conftest import launch_rt, make_cfg


def register_mark_task(table, out_buf):
    """Loop task storing ``100*group_iv + executing_tid`` per iteration."""
    layout = PayloadLayout.build([("mark", "i64")])

    def task(tc, rt, omp_iv, values):
        base = int(values["mark"])
        yield from tc.atomic_add(out_buf, base + omp_iv, 1 + tc.tid)

    return table.register(task, layout, "mark", kind="simd")


class TestSimdLoop:
    def test_iterations_strided_across_group(self, rt_device):
        """__simd_loop covers [0, trip) with stride simd_len (Fig 8)."""
        cfg = make_cfg(team_size=32, simd_len=8, parallel_mode=ExecMode.SPMD)
        table = DispatchTable()
        hits = rt_device.alloc("hits", 40, np.int64)
        owners = rt_device.alloc("owners", 40, np.int64)
        layout = PayloadLayout.build([])

        def task(tc, rt, omp_iv, values):
            yield from tc.atomic_add(hits, omp_iv, 1)
            yield from tc.store(owners, omp_iv, tc.tid)

        fn = table.register(task, layout, "t", kind="simd")

        def body(tc, rt):
            if tc.tid < 8:  # one group runs the loop
                yield from simd_loop(tc, rt, fn, 20, {})

        launch_rt(rt_device, cfg, body, table=table)
        h = hits.to_numpy()
        assert np.all(h[:20] == 1) and np.all(h[20:] == 0)
        # Iteration i executed by group lane i % simd_len.
        assert np.array_equal(owners.to_numpy()[:20], np.arange(20) % 8)


class TestSpmdPath:
    def test_all_lanes_execute_locally(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=8, parallel_mode=ExecMode.SPMD)
        table = DispatchTable()
        out = rt_device.alloc("out", 64, np.int64)
        fn = register_mark_task(table, out)

        def body(tc, rt):
            group = tc.tid // 8
            yield from simd(tc, rt, fn, 8, {"mark": group * 16}, spmd=True)

        kc, rc = launch_rt(rt_device, cfg, body, table=table)
        out_np = out.to_numpy()
        for g in range(4):
            assert np.all(out_np[g * 16 : g * 16 + 8] > 0)
        assert rc.simd_spmd == 4
        assert rc.simd_wakeups == 0  # no state machine involved
        assert rc.sharing_fallbacks == 0


class TestGenericPath:
    def test_leader_wakes_workers_and_all_iterate(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=8, parallel_mode=ExecMode.GENERIC)
        table = DispatchTable()
        out = rt_device.alloc("out", 64, np.int64)
        fn = register_mark_task(table, out)

        def body(tc, rt):
            group = tc.tid // 8
            if is_simd_group_leader(tc, cfg):
                yield from simd(tc, rt, fn, 8, {"mark": group * 16}, spmd=False)
                # Terminate the group's workers (what __parallel does).
                from repro.runtime.simd import set_simd_fn

                yield from set_simd_fn(tc, rt, group, 0)
                yield from tc.syncwarp(simdmask(tc, cfg))
            else:
                yield from simd_state_machine(tc, rt)

        kc, rc = launch_rt(rt_device, cfg, body, table=table)
        out_np = out.to_numpy()
        for g in range(4):
            assert np.all(out_np[g * 16 : g * 16 + 8] > 0)
        assert rc.simd_generic == 4
        assert rc.simd_wakeups == 4 * 7  # every worker woke exactly once

    def test_consecutive_simd_loops_one_region(self, rt_device):
        """Workers loop in the state machine across multiple __simd calls."""
        cfg = make_cfg(team_size=32, simd_len=8, parallel_mode=ExecMode.GENERIC)
        table = DispatchTable()
        out = rt_device.alloc("out", 64, np.int64)
        fn = register_mark_task(table, out)

        def body(tc, rt):
            if tc.tid >= 8:
                return  # only group 0 participates in this test
            if is_simd_group_leader(tc, cfg):
                yield from simd(tc, rt, fn, 8, {"mark": 0}, spmd=False)
                yield from simd(tc, rt, fn, 8, {"mark": 16}, spmd=False)
                yield from simd(tc, rt, fn, 8, {"mark": 32}, spmd=False)
                from repro.runtime.simd import set_simd_fn

                yield from set_simd_fn(tc, rt, 0, 0)
                yield from tc.syncwarp(simdmask(tc, cfg))
            else:
                yield from simd_state_machine(tc, rt)

        kc, rc = launch_rt(rt_device, cfg, body, table=table)
        out_np = out.to_numpy()
        for base in (0, 16, 32):
            assert np.all(out_np[base : base + 8] > 0)
        assert rc.simd_wakeups == 3 * 7


class TestSequentialFastPath:
    def test_group_size_one_runs_sequentially(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=1, parallel_mode=ExecMode.SPMD)
        table = DispatchTable()
        out = rt_device.alloc("out", 32, np.int64)
        layout = PayloadLayout.build([])

        def task(tc, rt, omp_iv, values):
            yield from tc.atomic_add(out, tc.tid, 1)

        fn = table.register(task, layout, "t", kind="simd")

        def body(tc, rt):
            yield from simd(tc, rt, fn, 5, {}, spmd=True)

        kc, rc = launch_rt(rt_device, cfg, body, table=table)
        assert np.all(out.to_numpy() == 5)  # every thread ran all iterations
        assert rc.simd_sequential == 32
        assert kc.syncwarps == 0  # no group machinery at all


class TestZeroTrip:
    @pytest.mark.parametrize("spmd", [True, False])
    def test_zero_trip_count_executes_nothing(self, rt_device, spmd):
        mode = ExecMode.SPMD if spmd else ExecMode.GENERIC
        cfg = make_cfg(team_size=32, simd_len=8, parallel_mode=mode)
        table = DispatchTable()
        out = rt_device.alloc("out", 8, np.int64)
        layout = PayloadLayout.build([])

        def task(tc, rt, omp_iv, values):
            yield from tc.atomic_add(out, 0, 1)

        fn = table.register(task, layout, "t", kind="simd")

        def body(tc, rt):
            if tc.tid >= 8:
                if spmd:
                    yield from simd(tc, rt, fn, 0, {}, spmd=True)
                return
            if spmd:
                yield from simd(tc, rt, fn, 0, {}, spmd=True)
            elif is_simd_group_leader(tc, cfg):
                yield from simd(tc, rt, fn, 0, {}, spmd=False)
                from repro.runtime.simd import set_simd_fn

                yield from set_simd_fn(tc, rt, 0, 0)
                yield from tc.syncwarp(simdmask(tc, cfg))
            else:
                yield from simd_state_machine(tc, rt)

        launch_rt(rt_device, cfg, body, table=table)
        assert out.read(0) == 0
