"""Unit and property tests for the SIMD-group mapping helpers (§5.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu.costmodel import nvidia_a100
from repro.gpu.thread import ThreadCtx
from repro.runtime.icv import ExecMode, LaunchConfig
from repro.runtime.mapping import (
    get_simd_group,
    get_simd_group_id,
    get_simd_group_size,
    group_leader_tid,
    is_extra_warp_filler,
    is_simd_group_leader,
    is_team_main,
    simdmask,
)


def make_tc(tid, block_dim=160):
    return ThreadCtx(tid, 32, block_id=0, num_blocks=1, block_dim=block_dim, block=None)


def make_cfg(simd_len=8, team_size=128, teams_mode=ExecMode.GENERIC):
    return LaunchConfig(
        num_teams=1,
        team_size=team_size,
        simd_len=simd_len,
        teams_mode=teams_mode,
        parallel_mode=ExecMode.GENERIC,
        params=nvidia_a100(),
    )


class TestMapping:
    def test_group_assignment(self):
        cfg = make_cfg(simd_len=8)
        assert get_simd_group(make_tc(0), cfg) == 0
        assert get_simd_group(make_tc(7), cfg) == 0
        assert get_simd_group(make_tc(8), cfg) == 1
        assert get_simd_group(make_tc(127), cfg) == 15

    def test_group_id_and_leader(self):
        cfg = make_cfg(simd_len=8)
        assert get_simd_group_id(make_tc(8), cfg) == 0
        assert is_simd_group_leader(make_tc(8), cfg)
        assert get_simd_group_id(make_tc(15), cfg) == 7
        assert not is_simd_group_leader(make_tc(15), cfg)

    def test_group_size(self):
        assert get_simd_group_size(make_tc(0), make_cfg(simd_len=4)) == 4

    def test_simdmask_adjacent_lanes(self):
        cfg = make_cfg(simd_len=8)
        assert simdmask(make_tc(0), cfg) == 0xFF
        assert simdmask(make_tc(9), cfg) == 0xFF00
        assert simdmask(make_tc(40), cfg) == 0xFF00  # warp 1, lanes 8..15

    def test_simdmask_full_warp_group(self):
        cfg = make_cfg(simd_len=32)
        assert simdmask(make_tc(5), cfg) == 0xFFFFFFFF

    def test_group_leader_tid(self):
        cfg = make_cfg(simd_len=8)
        assert group_leader_tid(3, cfg) == 24

    def test_team_main_detection(self):
        cfg = make_cfg(teams_mode=ExecMode.GENERIC, team_size=128)
        assert is_team_main(make_tc(128), cfg)
        assert not is_team_main(make_tc(0), cfg)
        assert is_extra_warp_filler(make_tc(129), cfg)
        assert not is_extra_warp_filler(make_tc(128), cfg)

    def test_no_main_in_spmd(self):
        cfg = make_cfg(teams_mode=ExecMode.SPMD)
        assert not is_team_main(make_tc(0), cfg)
        assert not is_extra_warp_filler(make_tc(127), cfg)


@given(
    simd_len=st.sampled_from([1, 2, 4, 8, 16, 32]),
    tid=st.integers(min_value=0, max_value=127),
)
def test_mapping_invariants(simd_len, tid):
    """Group mapping is a consistent partition of the team's threads."""
    cfg = make_cfg(simd_len=simd_len)
    tc = make_tc(tid)
    group = get_simd_group(tc, cfg)
    gid = get_simd_group_id(tc, cfg)
    mask = simdmask(tc, cfg)
    # Thread id decomposes exactly into (group, lane-in-group).
    assert tid == group * simd_len + gid
    # Leaders are exactly the gid==0 threads.
    assert is_simd_group_leader(tc, cfg) == (gid == 0)
    # The mask names exactly simd_len adjacent lanes including the caller.
    assert bin(mask).count("1") == simd_len
    assert (mask >> tc.lane_id) & 1
    # All members of the group within the warp share the same mask.
    leader = make_tc(group * simd_len)
    if leader.warp_id == tc.warp_id:
        assert simdmask(leader, cfg) == mask
    # Masks never span a warp boundary.
    assert mask <= (1 << 32) - 1
