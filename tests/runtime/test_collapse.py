"""Tests for the loop-collapse extension."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RuntimeFault
from repro.runtime.collapse import collapsed_trip, decode_index, decode_index_device


class TestCollapsedTrip:
    def test_two_loops(self):
        assert collapsed_trip([4, 5]) == 20

    def test_three_loops(self):
        assert collapsed_trip([2, 3, 4]) == 24

    def test_zero_trip_loop(self):
        assert collapsed_trip([4, 0]) == 0

    def test_empty_rejected(self):
        with pytest.raises(RuntimeFault):
            collapsed_trip([])

    def test_negative_rejected(self):
        with pytest.raises(RuntimeFault):
            collapsed_trip([4, -1])


class TestDecode:
    def test_known_values(self):
        assert decode_index(0, [3, 4]) == (0, 0)
        assert decode_index(5, [3, 4]) == (1, 1)
        assert decode_index(11, [3, 4]) == (2, 3)

    def test_three_level(self):
        assert decode_index(23, [2, 3, 4]) == (1, 2, 3)


@given(
    trips=st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=4),
    data=st.data(),
)
def test_decode_is_bijective(trips, data):
    """Every fused iv decodes to a unique, in-range index tuple."""
    total = collapsed_trip(trips)
    iv = data.draw(st.integers(min_value=0, max_value=total - 1))
    idx = decode_index(iv, trips)
    assert len(idx) == len(trips)
    assert all(0 <= i < t for i, t in zip(idx, trips))
    # Re-encode to check bijectivity.
    back = 0
    for i, t in zip(idx, trips):
        back = back * t + i
    assert back == iv


def test_device_decode_charges_ops(device):
    out = []

    def k(tc):
        idx = yield from decode_index_device(tc, 17, [3, 4, 2])
        out.append(idx)

    kc = device.launch(k, 1, 1)
    assert out[0] == decode_index(17, [3, 4, 2])
    assert kc.issue_cycles > 0
