"""Tests for the variable sharing space (§5.3.1): staging, fetch, overflow."""

import numpy as np
import pytest

from repro.runtime.icv import ExecMode
from repro.runtime.mapping import get_simd_group, is_simd_group_leader, simdmask

from conftest import launch_rt, make_cfg


class TestSimdStaging:
    def test_stage_and_fetch_within_slice(self, rt_device):
        """Leaders stage slots; every group member fetches them back."""
        cfg = make_cfg(team_size=64, simd_len=8)
        results = rt_device.alloc("res", 64, np.uint64)

        def body(tc, rt, results):
            group = get_simd_group(tc, cfg)
            mask = simdmask(tc, cfg)
            if is_simd_group_leader(tc, cfg):
                yield from rt.sharing.stage_simd_args(
                    tc, group, [group * 10 + 1, group * 10 + 2]
                )
            yield from tc.syncwarp(mask)
            slots = yield from rt.sharing.fetch_simd_args(tc, group, 2)
            yield from tc.store(results, tc.tid, slots[0] * 1000 + slots[1])

        launch_rt(rt_device, cfg, body, args=(results,))
        res = results.to_numpy()
        for tid in range(64):
            g = tid // 8
            assert res[tid] == (g * 10 + 1) * 1000 + (g * 10 + 2)

    def test_overflow_falls_back_to_global(self, rt_device):
        """Payloads beyond the per-group slice allocate global memory."""
        cfg = make_cfg(team_size=64, simd_len=8, sharing_bytes=64)
        # 8 groups, 8 slots total -> 1 slot per group; 3 args overflow.
        results = rt_device.alloc("res", 64, np.uint64)

        def body(tc, rt, results):
            group = get_simd_group(tc, cfg)
            mask = simdmask(tc, cfg)
            if is_simd_group_leader(tc, cfg):
                yield from rt.sharing.stage_simd_args(tc, group, [7, 8, 9])
            yield from tc.syncwarp(mask)
            slots = yield from rt.sharing.fetch_simd_args(tc, group, 3)
            yield from tc.store(results, tc.tid, sum(slots))
            yield from tc.syncwarp(mask)
            if is_simd_group_leader(tc, cfg):
                yield from rt.sharing.end_simd_sharing(tc, group)

        kc, rc = launch_rt(rt_device, cfg, body, args=(results,))
        assert np.all(results.to_numpy() == 24)
        assert rc.sharing_fallbacks == 8  # one per group

    def test_overflow_allocation_freed(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=32, sharing_bytes=64)
        live_before = rt_device.gmem.live_bytes

        def body(tc, rt):
            if is_simd_group_leader(tc, cfg):
                yield from rt.sharing.stage_simd_args(tc, 0, list(range(20)))
                yield from rt.sharing.end_simd_sharing(tc, 0)
            else:
                yield from tc.compute("alu")

        launch_rt(rt_device, cfg, body)
        # The overflow allocation is freed; only the team's persistent
        # dynamic-schedule counter (8 bytes) remains.
        assert rt_device.gmem.live_bytes == live_before + 8

    def test_zero_arg_staging(self, rt_device):
        cfg = make_cfg(team_size=32, simd_len=8)

        def body(tc, rt):
            group = get_simd_group(tc, cfg)
            if is_simd_group_leader(tc, cfg):
                yield from rt.sharing.stage_simd_args(tc, group, [])
            yield from tc.syncwarp(simdmask(tc, cfg))
            slots = yield from rt.sharing.fetch_simd_args(tc, group, 0)
            assert slots == []

        launch_rt(rt_device, cfg, body)


class TestTeamStaging:
    def test_team_stage_fetch(self, rt_device):
        cfg = make_cfg(team_size=64, simd_len=1, teams_mode=ExecMode.SPMD)
        results = rt_device.alloc("res", 64, np.uint64)

        def body(tc, rt, results):
            if tc.tid == 0:
                yield from rt.sharing.stage_team_args(tc, [11, 22, 33])
            yield from tc.syncthreads()
            slots = yield from rt.sharing.fetch_team_args(tc, 3)
            yield from tc.store(results, tc.tid, sum(slots))

        launch_rt(rt_device, cfg, body, args=(results,))
        assert np.all(results.to_numpy() == 66)

    def test_team_overflow_roundtrip(self, rt_device):
        cfg = make_cfg(team_size=64, simd_len=1, teams_mode=ExecMode.SPMD)
        n = 40  # beyond TEAM_STAGING_SLOTS (32)
        results = rt_device.alloc("res", 1, np.uint64)

        def body(tc, rt, results):
            if tc.tid == 0:
                yield from rt.sharing.stage_team_args(tc, list(range(n)))
            yield from tc.syncthreads()
            if tc.tid == 1:
                slots = yield from rt.sharing.fetch_team_args(tc, n)
                yield from tc.store(results, 0, sum(slots))
            yield from tc.syncthreads()
            if tc.tid == 0:
                yield from rt.sharing.end_team_sharing(tc)

        kc, rc = launch_rt(rt_device, cfg, body, args=(results,))
        assert results.read(0) == sum(range(n))
        assert rc.sharing_fallbacks == 1


class TestOverflowLeak:
    """Regression: an aborted simd region must release its overflow.

    Before the fix in :func:`repro.runtime.simd.simd`, a loop body (or
    barrier) raising after ``stage_simd_args`` had fallen back to a
    global allocation skipped ``end_simd_sharing`` entirely, leaking the
    allocation: ``sharing_fallbacks`` grew without a matching free.
    """

    def test_aborted_generic_region_releases_overflow(self):
        from repro.core import api as omp
        from repro.errors import MemoryFault
        from repro.faults import FaultPlan, FaultSpec
        from repro.gpu.device import Device

        plan = FaultPlan(seed=3, specs=(FaultSpec("sharing.overflow"),))
        dev = Device(faults=plan)
        x = dev.from_array("x", np.zeros(16))
        live_before = {b.name for b in dev.gmem.live_buffers()}

        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"mark": 1}

        def body(tc, ivs, view):
            yield from tc.load(view["x"], 999)  # out of bounds: aborts

        inner = omp.simd(omp.loop(8, body=body, uses=("x",), name="inner"))
        tree = omp.target(omp.teams_distribute_parallel_for(
            2, nested=inner, pre=pre, captures=[("mark", "i64")],
            uses=(), name="outer"))
        with pytest.raises(MemoryFault):
            omp.launch(dev, tree, num_teams=1, team_size=32, simd_len=8,
                       args={"x": x})

        assert plan.counters.forced_overflows >= 1  # the fallback happened
        live_after = {b.name for b in dev.gmem.live_buffers()}
        leaked = {n for n in live_after - live_before if "overflow" in n}
        assert not leaked, f"aborted region leaked {sorted(leaked)}"
