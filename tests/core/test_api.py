"""Tests for the public API layer: builders, launch, results."""

import numpy as np
import pytest

from repro.errors import CodegenError
from repro.core import api as omp
from repro.gpu.costmodel import amd_mi100, nvidia_a100
from repro.gpu.device import Device
from repro.runtime.icv import ExecMode


def body(tc, ivs, view):
    (i,) = ivs
    v = yield from tc.load(view["x"], i)
    yield from tc.store(view["y"], i, v * 3.0)


@pytest.fixture
def dev():
    return Device(nvidia_a100())


def make_args(dev, n=128):
    return {
        "x": dev.from_array("x", np.arange(n, dtype=np.float64)),
        "y": dev.from_array("y", np.zeros(n)),
    }


class TestBuilders:
    def test_loop_builder(self):
        lp = omp.loop(8, body=body, start=2, step=2, name="l")
        assert lp.trip_count == 8 and lp.start == 2

    def test_as_loop_rejects_double_options(self):
        lp = omp.loop(8, body=body)
        with pytest.raises(CodegenError, match="not both"):
            omp.simd(lp, body=body)

    def test_directive_sugar(self):
        assert omp.simd(4, body=body).kind == "simd"
        assert omp.parallel_for(4, body=body).kind == "parallel_for"
        assert omp.teams_distribute(4, body=body).kind == "teams_distribute"
        assert omp.teams_distribute_parallel_for(4, body=body).kind == "tdpf"
        assert omp.target(omp.teams_distribute_parallel_for(4, body=body)).kind == "target"

    def test_external_flag(self):
        assert omp.simd(4, body=body, external=True).external


class TestLaunch:
    def test_launch_tree_directly(self, dev):
        args = make_args(dev)
        r = omp.launch(dev, omp.target(omp.teams_distribute_parallel_for(128, body=body)),
                       num_teams=2, team_size=64, args=args)
        assert np.array_equal(args["y"].to_numpy(), 3.0 * np.arange(128))
        assert r.cycles > 0

    def test_launch_precompiled_kernel_reusable(self, dev):
        args = make_args(dev)
        kernel = omp.compile(
            omp.target(omp.teams_distribute_parallel_for(128, body=body)),
            tuple(sorted(args)),
        )
        r1 = omp.launch(dev, kernel, num_teams=2, team_size=64, args=args)
        args["y"].fill_from(np.zeros(128))
        r2 = omp.launch(dev, kernel, num_teams=4, team_size=32, args=args)
        assert np.array_equal(args["y"].to_numpy(), 3.0 * np.arange(128))
        assert r1.cfg.num_teams == 2 and r2.cfg.num_teams == 4

    def test_summary_fields(self, dev):
        args = make_args(dev)
        r = omp.launch(dev, omp.target(omp.teams_distribute_parallel_for(128, body=body)),
                       num_teams=2, team_size=64, simd_len=1, args=args)
        s = r.summary()
        assert s["num_teams"] == 2.0
        assert s["simd_len"] == 1.0
        assert "omp_parallel_spmd" in s

    def test_runtime_counters_attached_to_kernel_extra(self, dev):
        args = make_args(dev)
        r = omp.launch(dev, omp.target(omp.teams_distribute_parallel_for(128, body=body)),
                       num_teams=1, team_size=64, args=args)
        assert r.counters.extra["omp_parallel_spmd"] == 1.0

    def test_regs_per_thread_lowers_occupancy(self):
        results = {}
        for regs in (32, 255):
            dev = Device(nvidia_a100().with_overrides(num_sms=1))
            args = make_args(dev, 1024)
            r = omp.launch(
                dev,
                omp.target(omp.teams_distribute_parallel_for(1024, body=body)),
                num_teams=8, team_size=128, args=args, regs_per_thread=regs,
            )
            results[regs] = (r.counters.blocks_per_sm, r.cycles)
        assert results[255][0] < results[32][0]
        assert results[255][1] >= results[32][1]

    def test_amd_launch_spmd_simd_works(self):
        dev = Device(amd_mi100())
        args = make_args(dev)

        def simd_body(tc, ivs, view):
            i, j = ivs
            idx = i * 32 + j
            v = yield from tc.load(view["x"], idx)
            yield from tc.store(view["y"], idx, v * 3.0)

        tree = omp.target(
            omp.teams_distribute_parallel_for(4, nested=omp.simd(32, body=simd_body))
        )
        r = omp.launch(dev, tree, num_teams=1, team_size=64, simd_len=8, args=args)
        assert np.array_equal(args["y"].to_numpy(), 3.0 * np.arange(128))
        assert not r.cfg.simd_demoted

    def test_sharing_bytes_forwarded(self, dev):
        args = make_args(dev)
        r = omp.launch(dev, omp.target(omp.teams_distribute_parallel_for(128, body=body)),
                       num_teams=1, team_size=32, args=args, sharing_bytes=512)
        assert r.cfg.sharing_bytes == 512
