"""Tests for num_teams/thread_limit clause resolution at launch."""

import numpy as np
import pytest

from repro.errors import CodegenError
from repro.core import api as omp
from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.frontend import pragma


def body(tc, ivs, view):
    (i,) = ivs
    v = yield from tc.load(view["x"], i)
    yield from tc.store(view["y"], i, v + 1.0)


def make_args(device, n=128):
    return {
        "x": device.from_array("x", np.arange(n, dtype=np.float64)),
        "y": device.from_array("y", np.zeros(n)),
    }


def test_clause_hints_used_as_defaults(device):
    args = make_args(device)
    tree = omp.target(
        omp.teams_distribute_parallel_for(128, body=body, num_teams=4, thread_limit=32)
    )
    r = omp.launch(device, tree, args=args)
    assert (r.cfg.num_teams, r.cfg.team_size) == (4, 32)
    assert np.array_equal(args["y"].to_numpy(), np.arange(128) + 1.0)


def test_explicit_geometry_overrides_hints(device):
    args = make_args(device)
    tree = omp.target(
        omp.teams_distribute_parallel_for(128, body=body, num_teams=4, thread_limit=32)
    )
    r = omp.launch(device, tree, num_teams=2, team_size=64, args=args)
    assert (r.cfg.num_teams, r.cfg.team_size) == (2, 64)


def test_missing_geometry_diagnosed(device):
    args = make_args(device)
    tree = omp.target(omp.teams_distribute_parallel_for(128, body=body))
    with pytest.raises(CodegenError, match="num_teams"):
        omp.launch(device, tree, args=args)


def test_pragma_clauses_flow_to_launch(device):
    args = make_args(device)
    tree = pragma(
        "target teams distribute parallel for num_teams(2) thread_limit(64)",
        CanonicalLoop(trip_count=128, body=body),
    )
    r = omp.launch(device, tree, args=args)
    assert (r.cfg.num_teams, r.cfg.team_size) == (2, 64)
    assert np.array_equal(args["y"].to_numpy(), np.arange(128) + 1.0)


def test_teams_distribute_hints(device):
    args = make_args(device, 32)
    tree = omp.target(
        omp.teams_distribute(32, body=body, num_teams=2, thread_limit=32)
    )
    r = omp.launch(device, tree, args=args)
    assert r.cfg.num_teams == 2
    assert np.array_equal(args["y"].to_numpy(), np.arange(32) + 1.0)
