"""Barrier-divergence, stale-mask, and deadlock analysis."""

import numpy as np
import pytest

from repro.errors import DeadlockError
from repro.gpu.device import Device
from repro.sanitizer.monitor import SanitizerConfig

REPORT = SanitizerConfig(mode="report")


def divergent_kernel(tc, a):
    if tc.tid < 16:
        yield from tc.syncthreads(bar_id=0)
    else:
        yield from tc.syncthreads(bar_id=1)
    yield from tc.store(a, tc.tid, 1.0)


def stale_mask_kernel(tc, a):
    if tc.tid == 0:
        yield from tc.store(a, 0, 1.0)
        return
    yield from tc.compute("alu")
    yield from tc.syncwarp()


class TestDivergentBarriers:
    def test_report_mode_collects_findings(self):
        dev = Device()
        a = dev.alloc("a", 32, np.float64)
        kc = dev.launch(divergent_kernel, num_blocks=1, threads_per_block=32,
                        args=(a,), sanitize=REPORT)
        report = kc.sanitizer
        div = report.by_category("barrier-divergence")
        assert div, report.text()
        assert "textually different barriers" in div[0].message
        # Both call sites of syncthreads appear in the finding.
        assert len(div[0].sites) == 2
        assert report.by_category("deadlock")

    def test_raise_mode_appends_analysis_to_error(self):
        dev = Device()
        a = dev.alloc("a", 32, np.float64)
        with pytest.raises(DeadlockError, match="sanitizer:") as exc:
            dev.launch(divergent_kernel, num_blocks=1, threads_per_block=32,
                       args=(a,), sanitize="raise")
        assert "barrier divergence" in str(exc.value)

    def test_plain_launch_keeps_legacy_message(self):
        """Without the sanitizer the old deadlock report is unchanged."""
        dev = Device()
        a = dev.alloc("a", 32, np.float64)
        with pytest.raises(DeadlockError, match="hint") as exc:
            dev.launch(divergent_kernel, num_blocks=1, threads_per_block=32,
                       args=(a,))
        assert "sanitizer:" not in str(exc.value)

    def test_deadlock_error_provenance(self):
        dev = Device()
        a = dev.alloc("a", 32, np.float64)
        with pytest.raises(DeadlockError) as exc:
            dev.launch(divergent_kernel, num_blocks=1, threads_per_block=32,
                       args=(a,))
        err = exc.value
        assert err.block_id == 0
        assert err.round is not None and err.round > 0
        assert len(err.lanes) == 32
        tid, warp, lane, state, key = err.lanes[0]
        assert (tid, warp, lane) == (0, 0, 0)


class TestStaleMask:
    def test_stale_mask_flagged_with_provenance(self):
        dev = Device()
        a = dev.alloc("a", 4, np.float64)
        kc = dev.launch(stale_mask_kernel, num_blocks=1, threads_per_block=32,
                        args=(a,), sanitize=REPORT)
        report = kc.sanitizer
        stale = report.by_category("stale-mask")
        assert stale, report.text()
        f = stale[0]
        assert f.block == 0 and f.warp == 0
        assert f.extra["retired_tid"] == 0
        assert "never converge" in f.message

    def test_retire_after_wait_also_detected(self):
        """Reverse interleaving: siblings wait first, then the lane retires."""

        def kernel(tc, a):
            if tc.tid == 0:
                # Two compute steps delay retirement past the others' arrival.
                yield from tc.compute("alu")
                yield from tc.compute("alu")
                return
            yield from tc.syncwarp()

        dev = Device()
        a = dev.alloc("a", 4, np.float64)
        kc = dev.launch(kernel, num_blocks=1, threads_per_block=32,
                        args=(a,), sanitize=REPORT)
        assert kc.sanitizer.by_category("stale-mask"), kc.sanitizer.text()


class TestWorkerLockup:
    def test_absent_lane_listed_in_divergence(self):
        """A lane that never reaches the block barrier is named."""

        def kernel(tc, a):
            if tc.tid == 5:
                # Worker-style lockup: waits on a warp barrier nobody joins
                # while the rest of the block sits at syncthreads.
                yield from tc.syncwarp()
            else:
                yield from tc.syncthreads()
            yield from tc.store(a, tc.tid, 1.0)

        dev = Device()
        a = dev.alloc("a", 32, np.float64)
        kc = dev.launch(kernel, num_blocks=1, threads_per_block=32,
                        args=(a,), sanitize=REPORT)
        report = kc.sanitizer
        div = report.by_category("barrier-divergence")
        assert div, report.text()
        assert any("never arrived" in f.message or "t5" in f.message for f in div)
        dead = report.by_category("deadlock")
        assert dead and "t5" in dead[0].message

    def test_clean_barriers_produce_no_findings(self):
        def kernel(tc, a):
            yield from tc.syncwarp()
            yield from tc.syncthreads()
            yield from tc.store(a, tc.tid, 1.0)

        dev = Device()
        a = dev.alloc("a", 64, np.float64)
        kc = dev.launch(kernel, num_blocks=1, threads_per_block=64,
                        args=(a,), sanitize=REPORT)
        assert kc.sanitizer.clean, kc.sanitizer.text()
        assert kc.sanitizer.stats.get("barrier_arrivals") == 128
