"""Property tests: schedule policies are pure functions of their seed.

Replayability rests on this: a divergent seed found on one machine must
reproduce on another, so ``ShuffleSchedule``/``BoundedPreemptionSchedule``
permutations may depend on nothing but ``(seed, block, round, warp, n)``
— not process identity, not ``PYTHONHASHSEED``, not call order, not
which executor shards the blocks.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import Device
from repro.sanitizer.schedule import BoundedPreemptionSchedule, ShuffleSchedule

_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
_SMALL = st.integers(min_value=0, max_value=32)


class TestPolicyPurity:
    @given(seed=_SEEDS, block=_SMALL, rnd=st.integers(0, 256),
           n=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_warp_order_is_a_seeded_permutation(self, seed, block, rnd, n):
        policy = ShuffleSchedule(seed)
        order = list(policy.warp_order(block, rnd, n))
        assert sorted(order) == list(range(n))
        assert order == list(ShuffleSchedule(seed).warp_order(block, rnd, n))

    @given(seed=_SEEDS, block=_SMALL, rnd=st.integers(0, 256),
           warp=_SMALL, n=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_commit_order_is_a_seeded_permutation(self, seed, block, rnd,
                                                  warp, n):
        policy = ShuffleSchedule(seed)
        order = list(policy.commit_order(block, rnd, warp, n))
        assert sorted(order) == list(range(n))
        assert order == list(
            ShuffleSchedule(seed).commit_order(block, rnd, warp, n))

    @given(seed=_SEEDS, queries=st.lists(
        st.tuples(_SMALL, st.integers(0, 64), st.integers(1, 16)),
        min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_call_order_does_not_matter(self, seed, queries):
        """Statelessness: a policy queried in any order — e.g. blocks
        sharded across executor workers racing through rounds — answers
        identically."""
        forward = ShuffleSchedule(seed)
        backward = ShuffleSchedule(seed)
        want = [list(forward.warp_order(b, r, n)) for b, r, n in queries]
        got = [list(backward.warp_order(b, r, n))
               for b, r, n in reversed(queries)]
        assert got[::-1] == want

    @given(seed=_SEEDS, block=_SMALL, rnd=st.integers(0, 64),
           n=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_bounded_preemption_is_pure(self, seed, block, rnd, n):
        a = BoundedPreemptionSchedule(seed, budget=3, horizon=32)
        b = BoundedPreemptionSchedule(seed, budget=3, horizon=32)
        assert list(a.warp_order(block, rnd, n)) == \
            list(b.warp_order(block, rnd, n))
        assert sorted(a.warp_order(block, rnd, n)) == list(range(n))


_SUBPROCESS_PROG = """
import json, sys
from repro.sanitizer.schedule import BoundedPreemptionSchedule, ShuffleSchedule
seed = int(sys.argv[1])
shuffle = ShuffleSchedule(seed)
bounded = BoundedPreemptionSchedule(seed, budget=3, horizon=16)
out = {
    "warp": [list(shuffle.warp_order(b, r, 8))
             for b in range(3) for r in range(6)],
    "commit": [list(shuffle.commit_order(b, r, w, 6))
               for b in range(2) for r in range(4) for w in range(2)],
    "bounded": [list(bounded.warp_order(0, r, 8)) for r in range(16)],
}
print(json.dumps(out, sort_keys=True))
"""


def _orders_in_subprocess(seed: int, hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.path.abspath("src")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_PROG, str(seed)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


class TestCrossProcessStability:
    @pytest.mark.parametrize("seed", [0, 7, 2023])
    def test_permutations_survive_pythonhashseed(self, seed):
        """The SHA-512 string seeding contract: identical permutations in
        fresh processes under different ``PYTHONHASHSEED`` values."""
        a = _orders_in_subprocess(seed, "0")
        b = _orders_in_subprocess(seed, "4242")
        assert a == b
        # And the parent process (whatever its hash seed) agrees too.
        shuffle = ShuffleSchedule(seed)
        assert a["warp"] == [list(shuffle.warp_order(b_, r, 8))
                             for b_ in range(3) for r in range(6)]


class TestSerialShardedIdentity:
    def test_one_policy_identical_serial_vs_sharded(self):
        """A multi-block kernel run under one ShuffleSchedule gives
        bit-identical memory whether the blocks execute serially or
        sharded across parallel workers — per-block permutations depend
        only on (seed, block, round), never on scheduling of siblings."""
        from repro.exec import ParallelExecutor, SerialExecutor

        def run(executor):
            dev = Device(executor=executor)
            a = dev.alloc("a", 256, np.float64)

            def kernel(tc, a):
                v = yield from tc.load(a, tc.tid)
                yield from tc.atomic_add(a, tc.tid % 16, v + float(tc.tid))
                yield from tc.store(a, 64 + tc.tid, float(tc.tid % 7))

            dev.launch(kernel, num_blocks=4, threads_per_block=64,
                       args=(a,), schedule_policy=ShuffleSchedule(11))
            return dev.to_numpy(a)

        serial = run(SerialExecutor())
        threaded = run(ParallelExecutor(workers=2, processes=False))
        forked = run(ParallelExecutor(workers=2, processes=True))
        assert np.array_equal(serial, threaded)
        assert np.array_equal(serial, forked)
