"""The seeded-bug corpus and the ``python -m repro.sanitizer`` CLI."""

import json
import os

import pytest

from repro.sanitizer import corpus
from repro.sanitizer.__main__ import main

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


class TestCorpus:
    def test_every_planted_bug_is_caught(self):
        results = corpus.run_all()
        missed = [r.describe() for r in results if not r.caught]
        assert not missed, "\n".join(missed)

    def test_corpus_covers_required_bug_classes(self):
        cats = [cat for case in corpus.CASES for cat in case.expect]
        assert sum(c == "data-race" for c in cats) >= 3
        assert sum(case.expect[0] in ("barrier-divergence", "stale-mask")
                   for case in corpus.CASES) >= 2
        assert any("sharing" in c for c in cats)
        assert any(c == "schedule-divergence" for c in cats)

    def test_by_name_unknown_raises(self):
        with pytest.raises(KeyError, match="no corpus case"):
            corpus.by_name("nope")


class TestCli:
    def test_corpus_exit_zero(self, capsys):
        assert main(["--corpus"]) == 0
        out = capsys.readouterr().out
        assert "7/7 planted bug(s) caught" in out

    def test_single_corpus_case(self, capsys):
        assert main(["--corpus", "cross-round-race"]) == 0
        assert "CAUGHT" in capsys.readouterr().out

    def test_corpus_json(self, capsys):
        assert main(["--corpus", "stale-simdmask", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["name"] == "stale-simdmask" and data[0]["caught"]

    def test_example_by_name_is_clean(self, capsys):
        assert main(["quickstart", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "session verdict: CLEAN" in out

    def test_example_json(self, capsys):
        assert main(["quickstart", "--quiet", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["clean"] is True
        assert len(data["launches"]) >= 1

    def test_buggy_script_exits_nonzero(self, tmp_path, capsys):
        script = tmp_path / "buggy.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.gpu.device import Device\n"
            "dev = Device()\n"
            "a = dev.alloc('a', 1, np.float64)\n"
            "def k(tc, a):\n"
            "    yield from tc.store(a, 0, float(tc.tid))\n"
            "dev.launch(k, num_blocks=1, threads_per_block=32, args=(a,))\n"
        )
        assert main([str(script)]) == 1
        assert "data-race" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out and "stale-simdmask" in out

    def test_missing_target_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_target_errors(self):
        with pytest.raises(SystemExit, match="no such script"):
            main(["definitely-not-a-real-example"])
