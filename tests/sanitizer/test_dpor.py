"""Dynamic partial-order reduction: directed backtracking, pruning,
budgets, fallback, replay, and the jit-telemetry diff carve-out.

The headline regression (promoted from the corpus's old blind seed
fan-out): DPOR must find the order-dependent divergence *the race graph
points at*, deterministically, with strictly fewer executed schedules
than seed sampling needs — and the statistics must prove the pruning.
"""

import numpy as np
import pytest

from repro.sanitizer.corpus import order_dependent_run
from repro.sanitizer.schedule import (
    BoundedPreemptionSchedule,
    DirectedSchedule,
    LoopController,
    explore_schedules,
    explore_schedules_dpor,
    replay_directed,
    strip_launch_telemetry,
)


def stable_run(policy):
    """Disjoint stores: no races, no divergence, nothing to backtrack."""
    from repro.gpu.device import Device

    dev = Device()
    a = dev.alloc("a", 64, np.float64)

    def kernel(tc, a):
        yield from tc.store(a, tc.tid, float(tc.tid))

    dev.launch(kernel, num_blocks=1, threads_per_block=64, args=(a,),
               schedule_policy=policy)
    return {"a": dev.to_numpy(a)}


class TestDirectedExploration:
    def test_finds_order_dependence_deterministically(self):
        """Same kernel, same result — twice.  No seed lottery."""
        first = explore_schedules_dpor(order_dependent_run)
        second = explore_schedules_dpor(order_dependent_run)
        assert first.order_dependent and second.order_dependent
        assert first.divergent_spec == second.divergent_spec
        assert first.stats.runs == second.stats.runs
        assert first.stats.stop_reason == "divergence"

    def test_backtracking_point_names_the_racing_pair(self):
        result = explore_schedules_dpor(order_dependent_run)
        point = result.divergent_backtrack
        assert point is not None
        label = point.pair_label()
        # The warp-0/warp-1 store pair on a[0], by thread id and address.
        assert "'a'[0]" in label
        assert "t32" in label and "t31" in label
        assert point.directive[0] == "warp"
        assert "reverse warp order" in point.describe()
        assert "racing pair" in result.text()

    def test_strictly_fewer_runs_than_sampling_with_pruning_stats(self):
        """The acceptance bar: every divergence sampling finds, with
        strictly fewer executed schedules, and stats that prove the
        partial-order reduction did the work."""
        sampled = explore_schedules(order_dependent_run, schedules=64,
                                    stop_on_divergence=False)
        directed = explore_schedules_dpor(order_dependent_run)
        assert sampled.order_dependent
        assert directed.order_dependent
        assert directed.stats.runs < sampled.stats.runs
        # The reduction is visible: many candidate schedules collapsed
        # into already-executed directive sets instead of running.
        assert directed.stats.pruned_equivalent > 0
        assert directed.stats.candidates > directed.stats.runs
        assert directed.stats.racing_pairs > 0
        assert directed.stats.backtrack_points >= 1
        # Sampling needed a seed; DPOR derived the schedule from the race.
        assert directed.divergent_spec == directed.divergent_backtrack \
            .schedule.to_spec()

    def test_stats_exported_on_report(self):
        result = explore_schedules_dpor(order_dependent_run)
        assert result.report.stats["dpor_runs"] == float(result.stats.runs)
        assert "dpor_pruned_equivalent" in result.report.stats
        assert "runs=" in result.stats.describe()

    def test_stable_kernel_single_run_no_backtracks(self):
        result = explore_schedules_dpor(stable_run)
        assert not result.order_dependent
        assert result.divergent_spec is None
        assert result.stats.runs == 1  # baseline only: no races, no points
        assert result.stats.racing_pairs == 0
        assert result.stats.backtrack_points == 0
        assert result.stats.stop_reason == "exhausted"
        assert "stable" in result.text()

    def test_atomic_reduction_is_not_flagged(self):
        """Atomics on one cell are synchronized — no racing pairs, no
        divergence, regardless of commit order."""
        from repro.gpu.device import Device

        def reduction_run(policy):
            dev = Device()
            total = dev.scalar("t", 0.0, np.float64)

            def kernel(tc, total):
                yield from tc.atomic_add(total, 0, float(tc.tid))

            dev.launch(kernel, num_blocks=1, threads_per_block=64,
                       args=(total,), schedule_policy=policy)
            return {"t": dev.to_numpy(total)}

        result = explore_schedules_dpor(reduction_run)
        assert not result.order_dependent
        assert result.baseline["t"][0] == sum(range(64))

    def test_divergent_error_found_directed(self):
        """A deadlock only a reversed commit order reaches: the race on
        the flag seeds the backtracking point that deadlocks."""
        from repro.gpu.device import Device

        def racy_then_diverge(policy):
            dev = Device()
            flag = dev.scalar("flag", 0.0, np.float64)

            def kernel(tc, flag):
                if tc.tid == 0:
                    yield from tc.store(flag, 0, 1.0)
                    yield from tc.syncthreads()
                else:
                    v = yield from tc.load(flag, 0)
                    if int(v) == 1:
                        yield from tc.syncthreads()
                    else:
                        yield from tc.syncwarp()

            dev.launch(kernel, num_blocks=1, threads_per_block=64,
                       args=(flag,), schedule_policy=policy)
            return {"flag": dev.to_numpy(flag)}

        result = explore_schedules_dpor(racy_then_diverge)
        assert result.order_dependent, result.stats.describe()
        assert result.errored
        # Under the report-mode session the deadlock surfaces as findings
        # on a completed launch, not a raised DeadlockError.
        assert "deadlock" in result.errored[0][1]
        assert result.report.by_category("schedule-divergence")
        # The replayed schedule really deadlocks outside the session.
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            replay_directed(racy_then_diverge, result.divergent_spec)


class TestReplay:
    def test_replay_directed_is_deterministic_and_divergent(self):
        result = explore_schedules_dpor(order_dependent_run)
        spec = result.divergent_spec
        assert isinstance(spec, list)  # a directive list, not a seed
        first = replay_directed(order_dependent_run, spec)
        second = replay_directed(order_dependent_run, spec)
        assert np.array_equal(first["a"], second["a"])
        assert not np.array_equal(first["a"], result.baseline["a"])

    def test_spec_roundtrips_through_json_shape(self):
        sched = DirectedSchedule([("warp", 0, 0, 0, 1), ("commit", 0, 2, 1)])
        again = DirectedSchedule.from_spec(sched.to_spec())
        assert again.key == sched.key
        # Directive sets are canonical: order and duplicates vanish.
        dup = DirectedSchedule([("commit", 0, 2, 1), ("warp", 0, 0, 0, 1),
                                ("warp", 0, 0, 0, 1)])
        assert dup.key == sched.key

    def test_directed_schedule_applies_its_directives(self):
        sched = DirectedSchedule([("warp", 0, 1, 0, 2), ("commit", 0, 1, 1)])
        # Untouched rounds keep the default ascending order.
        assert list(sched.warp_order(0, 0, 4)) == [0, 1, 2, 3]
        assert list(sched.commit_order(0, 0, 1, 3)) == [0, 1, 2]
        # Round 1: warp 2 moves ahead of warp 0; warp 1's commits reverse.
        assert list(sched.warp_order(0, 1, 4)) == [2, 0, 1, 3]
        assert list(sched.commit_order(0, 1, 1, 3)) == [2, 1, 0]


class TestController:
    def test_max_runs_budget(self):
        ctl = LoopController(max_runs=1, stop_on_first_divergence=False)
        result = explore_schedules_dpor(order_dependent_run, controller=ctl)
        assert result.stats.runs == 1
        assert result.stats.stop_reason == "max_runs"
        assert not result.order_dependent  # budget hit before any reversal

    def test_max_seconds_budget(self):
        ctl = LoopController(max_seconds=0.0, stop_on_first_divergence=False)
        result = explore_schedules_dpor(order_dependent_run, controller=ctl)
        assert result.stats.stop_reason == "max_seconds"

    def test_no_stop_maps_the_outcome_space(self):
        ctl = LoopController(stop_on_first_divergence=False)
        result = explore_schedules_dpor(order_dependent_run, controller=ctl)
        assert result.order_dependent
        assert result.stats.distinct_outcomes >= 2
        assert result.stats.stop_reason == "exhausted"
        assert result.stats.runs >= 3


class TestBoundedPreemption:
    def test_perturbs_at_most_budget_rounds_per_block(self):
        policy = BoundedPreemptionSchedule(seed=5, budget=2, horizon=32)
        perturbed = [rnd for rnd in range(64)
                     if list(policy.warp_order(0, rnd, 8)) != list(range(8))
                     or list(policy.commit_order(0, rnd, 0, 8)) != list(range(8))]
        assert 0 < len(perturbed) <= 2
        assert all(rnd < 32 for rnd in perturbed)  # horizon respected

    def test_stable_across_instances(self):
        a = BoundedPreemptionSchedule(seed=9, budget=3, horizon=16)
        b = BoundedPreemptionSchedule(seed=9, budget=3, horizon=16)
        for rnd in range(16):
            assert list(a.warp_order(1, rnd, 6)) == list(b.warp_order(1, rnd, 6))
            assert list(a.commit_order(1, rnd, 2, 5)) == \
                list(b.commit_order(1, rnd, 2, 5))

    def test_different_seeds_differ(self):
        orders = {
            tuple(tuple(BoundedPreemptionSchedule(s, budget=8, horizon=8)
                        .warp_order(0, rnd, 8)) for rnd in range(8))
            for s in range(6)
        }
        assert len(orders) > 1

    def test_fallback_runs_fire_for_cross_round_races(self):
        """A cross-round racing pair is not reversible by a round-local
        directive, so the explorer must spend fallback schedules on it."""
        from repro.gpu.device import Device

        def cross_round_run(policy):
            dev = Device()
            a = dev.alloc("a", 4, np.float64)

            def kernel(tc, a):
                if tc.tid == 0:
                    yield from tc.store(a, 0, 1.0)
                elif tc.tid == 32:
                    yield from tc.compute("alu")  # skew into round 1
                    yield from tc.store(a, 0, 2.0)
                else:
                    yield from tc.compute("alu")

            dev.launch(kernel, num_blocks=1, threads_per_block=64,
                       args=(a,), schedule_policy=policy)
            return {"a": dev.to_numpy(a)}

        ctl = LoopController(stop_on_first_divergence=False)
        result = explore_schedules_dpor(cross_round_run, controller=ctl,
                                        fallback_schedules=4)
        assert result.stats.cross_round_pairs >= 1
        assert result.stats.fallback_runs == 4


class TestTelemetryCarveOut:
    """Regression (satellite): diffing must not flag launch-scoped jit
    telemetry — a policy-hooked run deopts to instrumented while the
    hook-free baseline may compile, so ``extra["engine"]``/``jit_*``
    keys legitimately differ across otherwise identical runs."""

    def test_strip_launch_telemetry(self):
        extra = {"engine": "jit", "jit_traces_compiled": 3.0,
                 "jit_deopts": 1.0, "cycles": 100.0, "shared_bytes": 64.0}
        stripped = strip_launch_telemetry(extra)
        assert stripped == {"cycles": 100.0, "shared_bytes": 64.0}

    def test_jit_only_counter_difference_is_not_divergence(self):
        def telemetry_run(policy):
            if policy is None:  # hook-free baseline: really compiled
                return {"counters": {"engine": "jit",
                                     "jit_traces_compiled": 3.0,
                                     "cycles": 100.0}}
            return {"counters": {"cycles": 100.0}}  # hooked: deopted

        result = explore_schedules(telemetry_run, schedules=4)
        assert not result.order_dependent, result.text()

    def test_real_counter_difference_still_diverges(self):
        def broken_run(policy):
            cycles = 100.0 if policy is None else 101.0
            return {"counters": {"engine": "jit", "cycles": cycles}}

        result = explore_schedules(broken_run, schedules=4)
        assert result.order_dependent

    def test_dpor_end_to_end_under_jit_sweep(self, monkeypatch):
        """The whole DPOR loop under REPRO_ENGINE=jit: baseline and
        directed runs are hooked (deopt), the verdict is unchanged."""
        monkeypatch.setenv("REPRO_ENGINE", "jit")
        result = explore_schedules_dpor(order_dependent_run)
        assert result.order_dependent
        assert result.divergent_backtrack is not None
