"""Positive control: every shipped example runs clean under the sanitizer.

This is the "no false positives" half of the sanitizer's contract — the
corpus (``test_cli_and_corpus``) is the "no false negatives" half.  Each
example is executed unmodified under a process-wide session, exactly as
``python -m repro.sanitizer examples/<name>.py`` would run it.
"""

import contextlib
import io
import os
import runpy

import pytest

from repro import sanitizer

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
EXAMPLES = sorted(
    fn for fn in os.listdir(os.path.join(REPO, "examples")) if fn.endswith(".py")
)


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_is_sanitizer_clean(example):
    path = os.path.join(REPO, "examples", example)
    sess = sanitizer.activate(label=example)
    try:
        with contextlib.redirect_stdout(io.StringIO()):
            runpy.run_path(path, run_name="__main__")
    finally:
        sanitizer.deactivate()
    assert sess.reports, f"{example} launched no kernels under the session"
    merged = sess.merged()
    assert merged.clean, merged.text()
    # Every launch exercised the race detector.
    assert merged.stats.get("race_checked_accesses", 0) > 0
