"""Happens-before race detection: cross-round coverage and HB edges."""

import numpy as np
import pytest

from repro.errors import DataRaceError
from repro.gpu.device import Device
from repro.sanitizer.monitor import SanitizerConfig

REPORT = SanitizerConfig(mode="report")


def launch_report(kernel, threads=64, blocks=1, args=()):
    dev = Device()
    built = args(dev) if callable(args) else args
    kc = dev.launch(kernel, num_blocks=blocks, threads_per_block=threads,
                    args=built, sanitize=REPORT)
    return kc.sanitizer


class TestCrossRoundRegression:
    """The bug class the old round-local ``_check_races`` provably missed."""

    @staticmethod
    def kernel(tc, a):
        if tc.tid == 0:
            yield from tc.store(a, 0, 1.0)
        elif tc.tid == 32:
            # The conflicting store lands one scheduling round later, so a
            # same-round comparison never sees the pair.
            yield from tc.compute("alu")
            yield from tc.store(a, 0, 2.0)
        else:
            yield from tc.compute("alu")

    def test_cross_round_write_write_is_reported(self):
        report = launch_report(self.kernel, args=lambda d: (d.alloc("a", 4, np.float64),))
        races = report.by_category("data-race")
        assert races, report.text()
        assert "'a'[0]" in races[0].message

    def test_legacy_detect_races_flag_now_catches_it(self):
        """``detect_races=True`` is routed through the new detector."""
        dev = Device()
        a = dev.alloc("a", 4, np.float64)
        with pytest.raises(DataRaceError, match=r"data race.*'a'\[0\]"):
            dev.launch(self.kernel, num_blocks=1, threads_per_block=64,
                       args=(a,), detect_races=True)

    def test_error_provenance_fields(self):
        dev = Device()
        a = dev.alloc("a", 4, np.float64)
        with pytest.raises(DataRaceError) as exc:
            dev.launch(self.kernel, num_blocks=1, threads_per_block=64,
                       args=(a,), sanitize="raise")
        err = exc.value
        assert err.block_id == 0
        assert err.buffer == "a"
        assert err.index == 0
        assert err.round is not None
        assert len(err.sites) == 2 and all(":" in s for s in err.sites)


class TestHappensBeforeEdges:
    def test_syncthreads_orders_cross_warp_accesses(self):
        def kernel(tc, a):
            if tc.tid == 0:
                yield from tc.store(a, 0, 1.0)
            yield from tc.syncthreads()
            if tc.tid == 32:
                yield from tc.store(a, 0, 2.0)

        report = launch_report(kernel, args=lambda d: (d.alloc("a", 1, np.float64),))
        assert report.clean, report.text()

    def test_syncwarp_orders_lanes_within_warp(self):
        def kernel(tc, a):
            if tc.tid == 0:
                yield from tc.store(a, 0, 1.0)
            yield from tc.syncwarp()
            v = yield from tc.load(a, 0)
            yield from tc.store(a, 1 + tc.tid, v)

        report = launch_report(kernel, threads=32,
                               args=lambda d: (d.alloc("a", 40, np.float64),))
        assert report.clean, report.text()

    def test_missing_syncwarp_is_a_race(self):
        def kernel(tc, a):
            if tc.tid == 0:
                yield from tc.store(a, 0, 1.0)
            else:
                v = yield from tc.load(a, 0)
                yield from tc.store(a, 1 + tc.tid, v)

        report = launch_report(kernel, threads=32,
                               args=lambda d: (d.alloc("a", 40, np.float64),))
        assert report.by_category("data-race")

    def test_shuffle_joins_group_clocks(self):
        def kernel(tc, a):
            v = yield from tc.shfl(float(tc.tid), 0)
            if tc.tid == 0:
                yield from tc.store(a, 0, v)
            elif tc.tid == 1:
                yield from tc.compute("alu")
                # Ordered with t0's store only through the shuffle join.
                pass
            yield from tc.shfl(v, 0)
            if tc.tid == 1:
                yield from tc.store(a, 0, v + 1)

        report = launch_report(kernel, threads=32,
                               args=lambda d: (d.alloc("a", 1, np.float64),))
        assert report.clean, report.text()

    def test_atomic_claim_then_write_is_clean(self):
        """The dynamic-scheduling idiom: claim an index atomically, then
        write the claimed slot with plain stores — distinct winners, no race."""

        def kernel(tc, counter, out):
            old = yield from tc.atomic_add(counter, 0, 1)
            yield from tc.store(out, int(old), float(tc.tid))

        report = launch_report(kernel, threads=64,
                               args=lambda d: (d.scalar("c", 0, np.int64),
                                               d.alloc("out", 64, np.float64)))
        assert report.clean, report.text()

    def test_atomic_contention_is_not_a_race(self):
        def kernel(tc, a):
            yield from tc.atomic_add(a, 0, 1.0)

        report = launch_report(kernel, threads=64,
                               args=lambda d: (d.alloc("a", 1, np.float64),))
        assert report.clean, report.text()

    def test_plain_write_racing_an_atomic_is_reported(self):
        def kernel(tc, a):
            if tc.tid == 0:
                yield from tc.atomic_add(a, 0, 1.0)
            elif tc.tid == 1:
                yield from tc.compute("alu")
                yield from tc.store(a, 0, 9.0)

        report = launch_report(kernel, threads=32,
                               args=lambda d: (d.alloc("a", 1, np.float64),))
        assert report.by_category("data-race")

    def test_local_buffers_untracked(self):
        def kernel(tc, out):
            scratch = tc.alloca("scratch", 4, np.float64)
            yield from tc.store(scratch, 0, float(tc.tid))
            v = yield from tc.load(scratch, 0)
            yield from tc.store(out, tc.tid, v)

        report = launch_report(kernel, threads=32,
                               args=lambda d: (d.alloc("out", 32, np.float64),))
        assert report.clean, report.text()

    def test_cross_block_conflict_is_reported(self):
        """Blocks cannot synchronize; unordered cross-block writes race."""

        def kernel(tc, a):
            yield from tc.store(a, 0, float(tc.block_id))

        report = launch_report(kernel, threads=1, blocks=2,
                               args=lambda d: (d.alloc("a", 1, np.float64),))
        races = report.by_category("data-race")
        assert races
        blocks = {races[0].extra["first"]["block"], races[0].extra["second"]["block"]}
        assert blocks == {0, 1}


class TestReportBehaviour:
    def test_dedup_one_finding_per_access_pair(self):
        def kernel(tc, a):
            for _ in range(3):
                yield from tc.store(a, 0, float(tc.tid))

        report = launch_report(kernel, threads=2,
                               args=lambda d: (d.alloc("a", 1, np.float64),))
        assert len(report.by_category("data-race")) == 1

    def test_max_findings_truncation(self):
        def kernel(tc, a):
            yield from tc.store(a, tc.tid % 16, float(tc.tid))

        dev = Device()
        a = dev.alloc("a", 16, np.float64)
        cfg = SanitizerConfig(mode="report", max_findings=4)
        kc = dev.launch(kernel, num_blocks=1, threads_per_block=64,
                        args=(a,), sanitize=cfg)
        assert len(kc.sanitizer.findings) == 4
        assert kc.sanitizer.truncated > 0

    def test_no_monitor_means_no_overhead_objects(self):
        dev = Device()
        a = dev.alloc("a", 32, np.float64)

        def kernel(tc, a):
            yield from tc.store(a, tc.tid, 1.0)

        kc = dev.launch(kernel, num_blocks=1, threads_per_block=32, args=(a,))
        assert kc.sanitizer is None
