"""Sharing-space audit: fallbacks, over-reads, leaks — and the full
overflow -> global-alloc -> release protocol at the A1 boundary sizes."""

import numpy as np
import pytest

from repro.core import api as omp
from repro.gpu.device import Device
from repro.runtime.icv import DEFAULT_SHARING_BYTES
from repro.sanitizer.monitor import SanitizerConfig

REPORT = SanitizerConfig(mode="report")


def capture_tree(n_captures=6):
    """A generic-SIMD program whose leader stages ``n_captures`` payload
    slots per region instance (same shape as the validation suite)."""

    def pre(tc, ivs, view):
        yield from tc.compute("alu")
        return {f"c{k}": ivs[0] * 10 + k for k in range(n_captures)}

    def body(tc, ivs, view):
        i, j = ivs
        for k in range(n_captures):
            yield from tc.device_assert(
                int(view[f"c{k}"]) == i * 10 + k, "capture corrupted"
            )

    return omp.target(
        omp.teams_distribute_parallel_for(
            4,
            pre=pre,
            captures=[(f"c{k}", "i64") for k in range(n_captures)],
            nested=omp.simd(8, body=body, uses=()),
            uses=(),
        )
    )


class TestFallbackProtocol:
    def test_overflow_alloc_release_roundtrip(self):
        """Tiny sharing space: every episode overflows to global memory,
        results stay correct, allocations are released, and the sanitizer
        records the fallbacks as notes — not errors."""
        dev = Device()
        live_before = dev.gmem.live_bytes
        r = omp.launch(dev, capture_tree(), num_teams=1, team_size=64,
                       simd_len=8, args={}, sharing_bytes=64,
                       check=REPORT)
        assert r.runtime.sharing_fallbacks > 0
        report = r.sanitizer
        assert report.clean, report.text()  # fallbacks are notes, not bugs
        notes = report.by_category("sharing-fallback")
        assert len(notes) == report.stats["sharing_fallbacks"] > 0
        assert "fell back to a global-memory allocation" in notes[0].message
        assert report.stats["sharing_releases"] >= len(notes)
        # Nothing leaked: device-global usage returns to the baseline plus
        # the team's persistent dynamic-schedule counter.
        assert dev.gmem.live_bytes - live_before <= 8

    def test_roomy_space_stages_in_shared(self):
        dev = Device()
        r = omp.launch(dev, capture_tree(), num_teams=1, team_size=64,
                       simd_len=8, args={},
                       sharing_bytes=DEFAULT_SHARING_BYTES, check=REPORT)
        assert r.runtime.sharing_fallbacks == 0
        report = r.sanitizer
        assert report.clean
        assert not report.by_category("sharing-fallback")
        assert report.stats.get("sharing_staged_episodes", 0) > 0
        assert 0 < report.stats["sharing_peak_utilization"] <= 1.0

    @pytest.mark.parametrize("sharing_bytes", [256, 512, 1024, 2048, 4096])
    def test_a1_boundary_sizes(self, sharing_bytes):
        """Sweep the A1 ablation's sharing-space sizes: the audit's
        fallback count must agree with the runtime counter at every size,
        and the report stays clean throughout."""
        dev = Device()
        r = omp.launch(dev, capture_tree(), num_teams=1, team_size=64,
                       simd_len=8, args={}, sharing_bytes=sharing_bytes,
                       check=REPORT)
        report = r.sanitizer
        assert report.clean, report.text()
        assert report.stats.get("sharing_fallbacks", 0) == r.runtime.sharing_fallbacks
        # 8 groups share the space; 8 slots are staged per episode
        # (6 captures + 2 loop-bound slots), so the slice boundary is
        # exactly 8 slots/group = 512 bytes total.
        slots_per_group = (sharing_bytes // 8) // 8
        staged = report.stats.get("sharing_peak_slots", 0)
        if slots_per_group >= staged:
            assert r.runtime.sharing_fallbacks == 0
        else:
            assert r.runtime.sharing_fallbacks > 0


class TestAuditFindings:
    def test_leak_is_an_error(self):
        from repro.sanitizer.corpus import by_name

        result = by_name("sharing-leak").run()
        assert result.caught, result.detail
        assert "never released" in result.detail

    def test_overread_is_an_error(self):
        """Fetching more slots than were staged reads stale memory."""
        from repro.runtime.icv import ExecMode, LaunchConfig
        from repro.runtime.sharing import SharingSpace
        from repro.runtime.state import RuntimeCounters

        dev = Device()
        cfg = LaunchConfig(num_teams=1, team_size=32, simd_len=8,
                           teams_mode=ExecMode.SPMD,
                           parallel_mode=ExecMode.SPMD,
                           sharing_bytes=2048, params=dev.params)
        rc = RuntimeCounters()

        def kernel(tc):
            if tc.tid == 0:
                space = SharingSpace(tc.block.shared, cfg, dev.gmem, rc)
                yield from space.stage_simd_args(tc, 0, [1, 2])
                # BUG: fetch 4 slots when only 2 were staged.
                yield from space.fetch_simd_args(tc, 0, 4)
                yield from space.end_simd_sharing(tc, 0)
            else:
                yield from tc.compute("alu")

        kc = dev.launch(kernel, num_blocks=1, threads_per_block=32,
                        sanitize=REPORT)
        over = kc.sanitizer.by_category("sharing-overread")
        assert over, kc.sanitizer.text()
        assert over[0].severity == "error"
        assert "only 2 were staged" in over[0].message
