"""SanitizerReport rendering/JSON, session aggregation, omp.launch check=."""

import json

import numpy as np

from repro import sanitizer
from repro.core import api as omp
from repro.gpu.device import Device
from repro.sanitizer.report import Finding, SanitizerReport


def racy_kernel(tc, a):
    yield from tc.store(a, 0, float(tc.tid))


class TestReport:
    def test_text_rendering_includes_provenance(self):
        report = SanitizerReport("demo")
        report.add(Finding(category="data-race", message="boom", block=1,
                           warp=2, lane=3, tid=67, round=4,
                           address=("buf", 9), sites=("k.py:10", "k.py:20")))
        text = report.text()
        assert "==== sanitizer report: demo ====" in text
        assert "[error] data-race (block 1, warp 2, lane 3, t67, round 4)" in text
        assert "'buf'[9]" in text
        assert "site: k.py:10" in text and "site: k.py:20" in text

    def test_notes_do_not_break_cleanliness(self):
        report = SanitizerReport()
        report.add(Finding(category="sharing-fallback", message="fyi",
                           severity="note"))
        assert report.clean
        assert report.by_category("sharing-fallback")
        assert "fyi" in report.text()

    def test_json_roundtrip(self):
        dev = Device()
        a = dev.alloc("a", 1, np.float64)
        kc = dev.launch(racy_kernel, num_blocks=1, threads_per_block=32,
                        args=(a,), sanitize="report")
        data = json.loads(kc.sanitizer.to_json())
        assert data["clean"] is False
        f = data["findings"][0]
        assert f["category"] == "data-race"
        assert f["address"]["buffer"] == "a" and f["address"]["index"] == 0
        assert len(f["sites"]) == 2

    def test_merge_accumulates(self):
        a, b = SanitizerReport("a"), SanitizerReport("b")
        a.bump("x", 2)
        b.bump("x", 3)
        b.add(Finding(category="deadlock", message="stuck"))
        a.merge(b)
        assert a.stats["x"] == 5
        assert len(a.findings) == 1


class TestSession:
    def test_session_collects_every_launch(self):
        dev = Device()
        a = dev.alloc("a", 64, np.float64)

        def clean_kernel(tc, a):
            yield from tc.store(a, tc.tid, 1.0)

        with sanitizer.session(label="t") as sess:
            dev.launch(clean_kernel, num_blocks=1, threads_per_block=64, args=(a,))
            dev.launch(racy_kernel, num_blocks=1, threads_per_block=32, args=(a,))
        assert len(sess.reports) == 2
        assert sess.reports[0].clean
        assert not sess.reports[1].clean
        assert not sess.clean
        assert "session verdict" in sess.text()

    def test_deactivation_restores_unsanitized_launches(self):
        dev = Device()
        a = dev.alloc("a", 1, np.float64)
        with sanitizer.session() as sess:
            dev.launch(racy_kernel, num_blocks=1, threads_per_block=32, args=(a,))
        kc = dev.launch(racy_kernel, num_blocks=1, threads_per_block=32, args=(a,))
        assert kc.sanitizer is None
        assert len(sess.reports) == 1

    def test_explicit_sanitize_overrides_session(self):
        """A launch with its own sanitize= does not report into the session."""
        dev = Device()
        a = dev.alloc("a", 1, np.float64)
        with sanitizer.session() as sess:
            kc = dev.launch(racy_kernel, num_blocks=1, threads_per_block=32,
                            args=(a,), sanitize="report")
        assert kc.sanitizer is not None
        assert len(sess.reports) == 0

    def test_session_forces_report_mode(self):
        from repro.sanitizer.monitor import SanitizerConfig

        sess = sanitizer.SanitizerSession(SanitizerConfig(mode="raise"))
        assert sess.config.mode == "report"


class TestOmpLaunchCheck:
    def test_check_report_attaches_report(self):
        dev = Device()
        x = dev.from_array("x", np.arange(128, dtype=np.float64))

        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["x"], i, 2 * v)

        prog = omp.target(omp.teams_distribute_parallel_for(128, body=body,
                                                            uses=("x",)))
        r = omp.launch(dev, prog, num_teams=2, team_size=64,
                       args={"x": x}, check="report")
        assert r.sanitizer is not None
        assert r.sanitizer.clean, r.sanitizer.text()
        assert r.counters.extra["sanitizer_findings"] == 0.0
        np.testing.assert_allclose(dev.to_numpy(x), 2 * np.arange(128))

    def test_check_defaults_off(self):
        dev = Device()
        x = dev.from_array("x", np.zeros(32))

        def body(tc, ivs, view):
            (i,) = ivs
            yield from tc.store(view["x"], i, 1.0)

        prog = omp.target(omp.teams_distribute_parallel_for(32, body=body,
                                                            uses=("x",)))
        r = omp.launch(dev, prog, num_teams=1, team_size=32, args={"x": x})
        assert r.sanitizer is None
