"""Schedule exploration: seeded permutations, divergence, replay.

The exploration tests run under every round engine via the ``engine``
fixture (``REPRO_ENGINE`` sweep).  Schedule policies are launch hooks,
so policy-carrying launches deopt to the instrumented engine silently
while the policy-free baseline really runs fast/jit — the divergence
verdicts must be identical either way, and the deopt must be clean
(no jit telemetry on hooked launches, no error).
"""

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.sanitizer.schedule import (
    ShuffleSchedule,
    explore_schedules,
    replay_schedule,
)

ENGINES = ("instrumented", "fast", "jit")


@pytest.fixture(params=ENGINES)
def engine(request, monkeypatch):
    """Sweep the process-wide engine preference (downgrades silently)."""
    monkeypatch.setenv("REPRO_ENGINE", request.param)
    return request.param


def order_dependent_run(policy):
    """Final value of a[0] is whichever warp's store commits last."""
    dev = Device()
    a = dev.alloc("a", 1, np.float64)

    def kernel(tc, a):
        yield from tc.store(a, 0, float(tc.tid // 32))

    dev.launch(kernel, num_blocks=1, threads_per_block=64, args=(a,),
               schedule_policy=policy)
    return {"a": dev.to_numpy(a)}


def stable_run(policy):
    """Disjoint indices: immune to warp/commit order."""
    dev = Device()
    a = dev.alloc("a", 64, np.float64)

    def kernel(tc, a):
        yield from tc.store(a, tc.tid, float(tc.tid))

    dev.launch(kernel, num_blocks=1, threads_per_block=64, args=(a,),
               schedule_policy=policy)
    return {"a": dev.to_numpy(a)}


class TestExploration:
    def test_order_dependence_reproduced_within_64_schedules(self, engine):
        result = explore_schedules(order_dependent_run, schedules=64)
        assert result.order_dependent
        assert result.reproduced is not None
        assert result.schedules_run <= 64
        assert result.report.by_category("schedule-divergence")
        assert "replay" in result.text()

    def test_stable_kernel_never_diverges(self, engine):
        result = explore_schedules(stable_run, schedules=16)
        assert not result.order_dependent
        assert result.reproduced is None
        assert result.schedules_run == 16
        assert result.report.clean
        assert "stable" in result.text()

    def test_divergence_only_some_schedules_hit_is_reported(self, engine):
        """A deadlock only a permuted order reaches shows up as errored."""

        def racy_then_diverge(policy):
            dev = Device()
            flag = dev.scalar("flag", 0.0, np.float64)

            def kernel(tc, flag):
                # Same-round race on the flag: under the default commit
                # order lane 0's store lands before every sibling's load,
                # so all lanes take the block barrier.  A permuted commit
                # order lets loads slip ahead of the store; those lanes
                # branch to the warp barrier instead and the block
                # deadlocks (lane 0 waits at syncthreads, its mask-mates
                # at syncwarp).
                if tc.tid == 0:
                    yield from tc.store(flag, 0, 1.0)
                    yield from tc.syncthreads()
                else:
                    v = yield from tc.load(flag, 0)
                    if int(v) == 1:
                        yield from tc.syncthreads()
                    else:
                        yield from tc.syncwarp()

            dev.launch(kernel, num_blocks=1, threads_per_block=64,
                       args=(flag,), schedule_policy=policy)
            return {"flag": dev.to_numpy(flag)}

        result = explore_schedules(racy_then_diverge, schedules=32,
                                   stop_on_divergence=False)
        assert result.order_dependent
        assert result.errored, result.text()
        assert "DeadlockError" in result.errored[0][1]


class TestEngineDowngrade:
    """Policies are hooks: fast/jit launches must deopt cleanly."""

    def test_policy_deopts_jit_launch_without_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "jit")
        dev = Device()
        a = dev.alloc("a", 64, np.float64)

        def kernel(tc, a):
            yield from tc.store(a, tc.tid, float(tc.tid))

        # Policy-free launch really uses the jit engine...
        kc_free = dev.launch(kernel, num_blocks=1, threads_per_block=64,
                             args=(a,))
        assert kc_free.extra.get("engine") == "jit"
        # ...the hooked launch silently deopts: no jit telemetry keys.
        kc_hook = dev.launch(kernel, num_blocks=1, threads_per_block=64,
                             args=(a,), schedule_policy=ShuffleSchedule(1))
        assert "engine" not in kc_hook.extra
        assert not any(k.startswith("jit_") for k in kc_hook.extra)

    @pytest.mark.parametrize("explicit", ["fast", "jit"])
    def test_explicit_engine_plus_policy_raises(self, explicit):
        from repro.errors import LaunchError

        dev = Device()
        a = dev.alloc("a", 64, np.float64)

        def kernel(tc, a):
            yield from tc.store(a, tc.tid, float(tc.tid))

        with pytest.raises(LaunchError, match="hook"):
            dev.launch(kernel, num_blocks=1, threads_per_block=64,
                       args=(a,), engine=explicit,
                       schedule_policy=ShuffleSchedule(1))

    def test_baseline_engine_does_not_change_verdict(self, engine):
        """The same divergent seed is found whatever engine the baseline
        (policy-free) run resolved to — memory is bit-identical across
        the engine ladder, so the diff is engine-invariant."""
        result = explore_schedules(order_dependent_run, schedules=64)
        assert result.order_dependent
        assert result.reproduced == 3  # first divergent seed is stable


class TestReplay:
    def test_replay_by_seed_is_deterministic(self, engine):
        result = explore_schedules(order_dependent_run, schedules=64)
        seed = result.reproduced
        first = replay_schedule(order_dependent_run, seed)
        second = replay_schedule(order_dependent_run, seed)
        assert np.array_equal(first["a"], second["a"])

    def test_replay_reproduces_the_divergent_output(self, engine):
        result = explore_schedules(order_dependent_run, schedules=64)
        seed = result.reproduced
        baseline = result.baseline["a"]
        replayed = replay_schedule(order_dependent_run, seed)["a"]
        assert not np.array_equal(replayed, baseline)

    def test_same_seed_same_permutations(self):
        a = ShuffleSchedule(7)
        b = ShuffleSchedule(7)
        for rnd in range(5):
            assert list(a.warp_order(0, rnd, 8)) == list(b.warp_order(0, rnd, 8))
            assert list(a.commit_order(0, rnd, 0, 6)) == list(b.commit_order(0, rnd, 0, 6))

    def test_different_seeds_differ_somewhere(self):
        a = [tuple(ShuffleSchedule(s).warp_order(0, 0, 16)) for s in range(8)]
        assert len(set(a)) > 1


class TestPolicyCorrectnessEnvelope:
    def test_permuted_schedule_is_a_legal_interleaving(self, engine):
        """A well-synchronized kernel gives identical results under any
        explored schedule (the permutation only reorders commits the
        program declared unordered)."""

        def reduction_run(policy):
            dev = Device()
            total = dev.scalar("t", 0.0, np.float64)

            def kernel(tc, total):
                yield from tc.atomic_add(total, 0, float(tc.tid))

            dev.launch(kernel, num_blocks=2, threads_per_block=64,
                       args=(total,), schedule_policy=policy)
            return {"t": dev.to_numpy(total)}

        result = explore_schedules(reduction_run, schedules=8)
        assert not result.order_dependent
        assert result.baseline["t"][0] == sum(range(64)) * 2

    def test_costs_are_order_independent(self):
        """The cycle estimate must not depend on the commit permutation."""
        dev1, dev2 = Device(), Device()
        a1 = dev1.alloc("a", 64, np.float64)
        a2 = dev2.alloc("a", 64, np.float64)

        def kernel(tc, a):
            v = yield from tc.load(a, tc.tid)
            yield from tc.store(a, tc.tid, v + 1)
            yield from tc.syncthreads()

        kc1 = dev1.launch(kernel, num_blocks=1, threads_per_block=64, args=(a1,))
        kc2 = dev2.launch(kernel, num_blocks=1, threads_per_block=64, args=(a2,),
                          schedule_policy=ShuffleSchedule(3))
        assert kc1.cycles == kc2.cycles
