"""Property: an armed-but-inert fault plan is invisible, bit for bit.

A plan with no specs — or specs whose probability is zero — must leave
every counter of every launch identical to a plan-less run: the off path
is *zero-cost*, not merely cheap.  The executor is resolved from
``REPRO_EXECUTOR``, so the CI matrix replays this property through the
serial, in-process-parallel, and forked engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    fork_available,
)
from repro.faults import FaultPlan, FaultSpec
from repro.faults.plan import SITES
from repro.gpu.device import Device


def _run(executor, faults, num_blocks, threads, seed):
    dev = Device(executor=executor, faults=faults)
    n = num_blocks * threads
    rng = np.random.default_rng(seed)
    x = dev.from_array("x", rng.standard_normal(n))
    y = dev.alloc("y", n, np.float64)
    acc = dev.alloc("acc", num_blocks, np.float64)

    def kernel(tc, x, y, acc):
        i = tc.global_tid
        v = yield from tc.load(x, i)
        yield from tc.compute("fma")
        yield from tc.store(y, i, v * v)
        yield from tc.atomic_add(acc, tc.block_id, v)
        yield from tc.syncwarp()

    kc = dev.launch(kernel, num_blocks=num_blocks, threads_per_block=threads,
                    args=(x, y, acc))
    return kc, dev.to_numpy(y), dev.to_numpy(acc)


def zero_plans():
    inert = st.just(())
    zeroed = st.lists(
        st.sampled_from(sorted(SITES)), min_size=1, max_size=3, unique=True,
    ).map(lambda sites: tuple(FaultSpec(s, probability=0.0) for s in sites))
    return st.tuples(st.integers(0, 2**32 - 1), st.one_of(inert, zeroed)).map(
        lambda t: FaultPlan(seed=t[0], specs=t[1]))


@settings(max_examples=20, deadline=None)
@given(plan=zero_plans(), num_blocks=st.integers(1, 6),
       warps=st.integers(1, 3), seed=st.integers(0, 2**16))
def test_zero_probability_plan_is_bit_identical(plan, num_blocks,
                                                warps, seed):
    # default_executor() resolves REPRO_EXECUTOR (stateless, so calling
    # it per example is equivalent to the suite-wide ``executor`` fixture
    # without tripping hypothesis's function-scoped-fixture check).
    executor = default_executor()
    threads = warps * 32
    base_kc, base_y, base_acc = _run(executor, None, num_blocks, threads, seed)
    kc, y, acc = _run(executor, plan, num_blocks, threads, seed)
    assert y.tobytes() == base_y.tobytes()
    assert acc.tobytes() == base_acc.tobytes()
    assert kc.identical(base_kc)
    assert plan.counters.injected == 0


@pytest.mark.skipif(not fork_available(), reason="platform cannot fork")
@settings(max_examples=5, deadline=None)
@given(plan=zero_plans(), seed=st.integers(0, 2**16))
def test_zero_probability_plan_identical_under_fork(plan, seed):
    # Explicit fork leg, independent of REPRO_EXECUTOR: the plan rides
    # into worker processes and must stay inert there too.
    fork = ParallelExecutor(workers=2, processes=True)
    _, base_y, base_acc = _run(SerialExecutor(), None, 4, 32, seed)
    kc, y, acc = _run(fork, plan, 4, 32, seed)
    assert y.tobytes() == base_y.tobytes()
    assert acc.tobytes() == base_acc.tobytes()
    assert plan.counters.injected == 0
