"""Failure-injection tests: misuse must fail loudly with diagnoses, never
silently corrupt results or hang without explanation."""

import numpy as np
import pytest

from repro.errors import (
    AllocationError,
    CodegenError,
    DeadlockError,
    DirectiveNestingError,
    InvalidSimdGroupError,
    MemoryFault,
    SimulationError,
)
from repro.core import api as omp
from repro.gpu.costmodel import nvidia_a100
from repro.gpu.device import Device


@pytest.fixture
def dev():
    return Device(nvidia_a100())


class TestSimulatorFaults:
    def test_out_of_bounds_body_access(self, dev):
        x = dev.from_array("x", np.zeros(8))

        def body(tc, ivs, view):
            yield from tc.load(view["x"], 99)

        tree = omp.target(omp.teams_distribute_parallel_for(4, body=body))
        with pytest.raises(MemoryFault, match="out of bounds"):
            omp.launch(dev, tree, num_teams=1, team_size=32, args={"x": x})

    def test_deadlock_report_names_lanes(self, dev):
        def k(tc):
            if tc.lane_id == 3:
                return
                yield
            yield from tc.syncwarp()

        with pytest.raises(DeadlockError) as exc:
            dev.launch(k, 1, 8)
        msg = str(exc.value)
        assert "waiting@syncwarp" in msg
        assert "hint" in msg

    def test_runaway_loop_detected(self, dev):
        def k(tc):
            while True:
                yield from tc.compute("alu")

        with pytest.raises(SimulationError, match="rounds"):
            dev.launch(k, 1, 32, max_rounds=1000)

    def test_shared_memory_exhaustion(self):
        params = nvidia_a100().with_overrides(shared_mem_per_block=1024)
        dev = Device(params)

        def body(tc, ivs, view):
            yield from tc.compute("alu")

        tree = omp.target(omp.teams_distribute_parallel_for(4, body=body))
        # The runtime's sharing space alone (2048 B) exceeds the block's
        # shared memory: allocation must fail loudly.
        with pytest.raises(AllocationError, match="shared memory exhausted"):
            omp.launch(dev, tree, num_teams=1, team_size=32, args={})


class TestRuntimeMisuse:
    def test_mismatched_group_sizes_rejected(self, dev):
        def body(tc, ivs, view):
            yield from tc.compute("alu")

        tree = omp.target(
            omp.teams_distribute_parallel_for(4, nested=omp.simd(8, body=body))
        )
        with pytest.raises(InvalidSimdGroupError, match="divide the warp"):
            omp.launch(dev, tree, num_teams=1, team_size=32, simd_len=5, args={})

    def test_leaf_parallel_for_forces_group_size_one(self, dev):
        """§5.4: without a simd construct, simd_len silently becomes 1 —
        otherwise group lanes would execute leaf bodies redundantly."""
        import numpy as np

        y = dev.from_array("y", np.zeros(32))

        def body(tc, ivs, view):
            (i,) = ivs
            yield from tc.store(view["y"], i, 1.0)

        tree = omp.target(omp.teams_distribute_parallel_for(32, body=body))
        r = omp.launch(dev, tree, num_teams=1, team_size=32, simd_len=8,
                       args={"y": y}, detect_races=True)
        assert r.cfg.simd_len == 1
        assert np.all(y.to_numpy() == 1.0)

    def test_worker_without_leader_deadlocks(self, dev):
        """A simd worker whose leader never posts work deadlocks visibly."""
        from repro.runtime.dispatch import DispatchTable
        from repro.runtime.icv import ExecMode, LaunchConfig
        from repro.runtime.simd import simd_state_machine
        from repro.runtime.state import RuntimeCounters, TeamRuntime

        cfg = LaunchConfig(1, 32, 8, ExecMode.SPMD, ExecMode.GENERIC,
                           params=nvidia_a100())

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, dev.gmem, DispatchTable(), RuntimeCounters())
            if tc.tid % 8 != 0:
                yield from simd_state_machine(tc, rt)
            # Leaders exit immediately without terminating their workers.
            yield from tc.compute("alu")

        with pytest.raises(DeadlockError):
            dev.launch(entry, 1, 32)


class TestCodegenMisuse:
    def test_simd_cannot_nest(self):
        inner = omp.simd(4, body=lambda tc, ivs, view: (yield from tc.compute()))
        with pytest.raises(DirectiveNestingError):
            omp.simd(omp.loop(4, nested=inner))

    def test_body_must_reference_declared_args(self, dev):
        def body(tc, ivs, view):
            yield from tc.compute("alu")

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                omp.loop(4, body=body, uses=("ghost",))
            )
        )
        from repro.errors import OutliningError

        with pytest.raises(OutliningError, match="undeclared"):
            omp.compile(tree, ("x",))

    def test_non_generator_body_diagnosed_at_run(self, dev):
        def body(tc, ivs, view):  # not a generator!
            return 42

        tree = omp.target(omp.teams_distribute_parallel_for(4, body=body))
        with pytest.raises(TypeError):
            omp.launch(dev, tree, num_teams=1, team_size=32, args={})
