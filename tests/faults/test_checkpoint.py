"""Block-granular checkpoint/resume: a launch killed mid-flight by the
watchdog resumes from its completed blocks instead of starting over.

The headline test is the ladder's new rung: a launch whose per-attempt
watchdog budget only fits part of the grid *cannot* complete under plain
retries (every attempt starts from zero) but *does* complete with
``resume=True`` — each attempt banks its finished blocks in the
checkpoint and the union converges, with ``kc.extra`` reporting how many
blocks were resumed versus re-executed, and the final output bit-identical
to an uninterrupted run.
"""

import os
import time

import numpy as np
import pytest

from repro.errors import LaunchTimeout
from repro.exec import ParallelExecutor, SerialExecutor
from repro.faults import LaunchCheckpoint
from repro.gpu.device import Device

N_BLOCKS = 8
TPB = 64
N = N_BLOCKS * TPB


def _slow_kernel(tc, x, y):
    # One sleep per block (lane 0) so the watchdog budget admits only a
    # few blocks per attempt.
    i = tc.global_tid
    if i % TPB == 0:
        time.sleep(0.06)
    v = yield from tc.load(x, i)
    yield from tc.store(y, i, v + 1.0)


def _launch_slow(*, resume, retries=5, timeout=0.2, executor=None):
    # shard_size=1 keeps the watchdog granular on single-CPU hosts (one
    # deadline check per block, not one per worker-sized shard).
    dev = Device(executor=executor or ParallelExecutor(processes=False,
                                                       shard_size=1))
    x = dev.from_array("x", np.arange(N, dtype=np.float64))
    y = dev.alloc("y", N, np.float64)
    kc = dev.launch(_slow_kernel, num_blocks=N_BLOCKS,
                    threads_per_block=TPB, args=(x, y),
                    timeout=timeout, retries=retries, backoff=0.0,
                    resume=resume)
    return dev.to_numpy(y), kc


CLEAN = np.arange(N, dtype=np.float64) + 1.0


class TestResume:
    def test_watchdog_kill_resumes_unfinished_blocks_only(self):
        out, kc = _launch_slow(resume=True)
        assert out.tobytes() == CLEAN.tobytes()
        assert kc.extra["blocks_resumed"] > 0
        assert (kc.extra["blocks_resumed"]
                + kc.extra["blocks_replayed"]) == N_BLOCKS

    def test_without_resume_retries_exhaust(self):
        with pytest.raises(LaunchTimeout):
            _launch_slow(resume=False)

    def test_unkilled_resume_launch_reports_zero_resumed(self):
        dev = Device(executor=ParallelExecutor(processes=False,
                                               shard_size=1))
        x = dev.from_array("x", np.arange(N, dtype=np.float64))
        y = dev.alloc("y", N, np.float64)
        kc = dev.launch(_slow_kernel, num_blocks=N_BLOCKS,
                        threads_per_block=TPB, args=(x, y), resume=True)
        assert dev.to_numpy(y).tobytes() == CLEAN.tobytes()
        assert kc.extra["blocks_resumed"] == 0.0
        assert kc.extra["blocks_replayed"] == N_BLOCKS

    def test_resume_falls_back_cleanly_without_checkpoint_support(self):
        # SerialExecutor has no checkpoint support: resume=True must be
        # a silent no-op, not an error.
        dev = Device(executor=SerialExecutor())
        x = dev.from_array("x", np.arange(N, dtype=np.float64))
        y = dev.alloc("y", N, np.float64)
        kc = dev.launch(_slow_kernel, num_blocks=N_BLOCKS,
                        threads_per_block=TPB, args=(x, y), resume=True)
        assert dev.to_numpy(y).tobytes() == CLEAN.tobytes()
        assert "blocks_resumed" not in kc.extra

    def test_explicit_checkpoint_survives_across_calls(self):
        # Feed the same checkpoint object through a failing launch and a
        # second Device: the banked blocks carry over.
        ckpt = LaunchCheckpoint()
        dev = Device(executor=ParallelExecutor(processes=False,
                                               shard_size=1))
        x = dev.from_array("x", np.arange(N, dtype=np.float64))
        y = dev.alloc("y", N, np.float64)
        with pytest.raises(LaunchTimeout):
            dev.launch(_slow_kernel, num_blocks=N_BLOCKS,
                       threads_per_block=TPB, args=(x, y),
                       timeout=0.2, retries=0, checkpoint=ckpt)
        assert 0 < len(ckpt) < N_BLOCKS
        kc = dev.launch(_slow_kernel, num_blocks=N_BLOCKS,
                        threads_per_block=TPB, args=(x, y),
                        timeout=0.2, retries=5, backoff=0.0,
                        checkpoint=ckpt)
        assert dev.to_numpy(y).tobytes() == CLEAN.tobytes()
        assert kc.extra["blocks_resumed"] >= 1


class _Rec:
    """Minimal picklable stand-in for a BlockRecord."""

    def __init__(self, block_id, completed=True, error=None):
        self.block_id = block_id
        self.completed = completed
        self.error = error


class TestCheckpointObject:
    def test_add_skips_incomplete_and_errored(self):
        ckpt = LaunchCheckpoint()
        ckpt.bind(4, TPB)
        fresh = ckpt.add([_Rec(0), _Rec(1, completed=False),
                          _Rec(2, error=RuntimeError("boom")), _Rec(3)])
        assert fresh == 2
        assert ckpt.completed_ids() == {0, 3}

    def test_geometry_change_clears_records(self):
        ckpt = LaunchCheckpoint()
        ckpt.bind(4, TPB)
        ckpt.add([_Rec(0)])
        ckpt.bind(8, TPB)
        assert len(ckpt) == 0

    def test_save_load_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "ckpt.bin")
        ckpt = LaunchCheckpoint()
        ckpt.bind(4, TPB)
        ckpt.add([_Rec(1), _Rec(2)])
        ckpt.save(path)
        loaded = LaunchCheckpoint.load(path)
        assert loaded.matches(4, TPB)
        assert loaded.completed_ids() == {1, 2}

    def test_load_missing_or_corrupt_is_empty(self, tmp_path):
        assert len(LaunchCheckpoint.load(
            os.path.join(tmp_path, "nope.bin"))) == 0
        path = os.path.join(tmp_path, "garbage.bin")
        with open(path, "wb") as fh:
            fh.write(b"\x00not a pickle")
        assert len(LaunchCheckpoint.load(path)) == 0
