"""Launch-level recovery: scrub, rollback/retry, watchdog, forced overflow.

Every test drives a real kernel through :meth:`Device.launch` (or the
``omp`` front end) with a seeded plan and asserts the recovered run is
bit-identical to a fault-free one.
"""

import numpy as np
import pytest

from repro.core import api as omp
from repro.errors import LaunchTimeout, MemoryFault
from repro.exec import ParallelExecutor, SerialExecutor, fork_available
from repro.faults import FaultPlan, FaultSpec
from repro.gpu.device import Device

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork worker processes"
)

N = 256


def _saxpy_kernel(tc, x, y):
    i = tc.global_tid
    v = yield from tc.load(x, i)
    yield from tc.compute("fma")
    yield from tc.store(y, i, 2.0 * v + 1.0)


def _run_saxpy(executor=None, faults=None, **launch_kw):
    dev = Device(executor=executor, faults=faults)
    x = dev.from_array("x", np.arange(N, dtype=np.float64))
    y = dev.alloc("y", N, np.float64)
    dev.launch(_saxpy_kernel, num_blocks=4, threads_per_block=64,
               args=(x, y), **launch_kw)
    return dev.to_numpy(y)


CLEAN = 2.0 * np.arange(N, dtype=np.float64) + 1.0


class TestScrub:
    def test_bitflips_repaired_and_bit_identical(self):
        plan = FaultPlan(seed=14, specs=(
            FaultSpec("memory.bitflip", flips=3),))
        out = _run_saxpy(faults=plan)
        assert out.tobytes() == CLEAN.tobytes()
        assert plan.counters.bitflips == 1
        assert plan.counters.recovered == 1
        assert plan.counters.unrecovered == 0

    def test_unrepairable_flip_raises_memory_fault(self):
        plan = FaultPlan(seed=14, specs=(
            FaultSpec("memory.bitflip", repair=False),))
        with pytest.raises(MemoryFault, match="uncorrectable"):
            _run_saxpy(faults=plan)
        assert plan.counters.unrecovered == 1

    def test_scrub_disabled_is_recorded_unrecovered(self):
        # scrub=False: the corruption goes undetected before launch; the
        # plan still books the injection as unrecovered provenance.
        plan = FaultPlan(seed=14, scrub=False, specs=(
            FaultSpec("memory.bitflip"),))
        _run_saxpy(faults=plan)
        assert plan.counters.bitflips == 1
        assert plan.counters.unrecovered == 1


class TestRetryRollback:
    def test_retry_heals_unrepairable_flip(self):
        # attempts=1: the flip fires on attempt 0 only; the rollback
        # restores memory and attempt 1 runs clean.
        plan = FaultPlan(seed=14, specs=(
            FaultSpec("memory.bitflip", repair=False, attempts=1),))
        out = _run_saxpy(faults=plan, retries=2, backoff=0.0)
        assert out.tobytes() == CLEAN.tobytes()
        assert plan.counters.launch_retries == 1
        assert plan.counters.rollbacks == 1

    def test_retries_exhausted_reraises(self):
        plan = FaultPlan(seed=14, specs=(
            FaultSpec("memory.bitflip", repair=False, attempts=99),))
        with pytest.raises(MemoryFault):
            _run_saxpy(faults=plan, retries=2, backoff=0.0)
        assert plan.counters.rollbacks == 2


class TestWatchdog:
    def test_timeout_raises_structured_launch_timeout(self):
        dev = Device(executor=SerialExecutor())
        x = dev.from_array("x", np.arange(N, dtype=np.float64))
        y = dev.alloc("y", N, np.float64)
        with pytest.raises(LaunchTimeout) as exc:
            dev.launch(_saxpy_kernel, num_blocks=64, threads_per_block=4,
                       args=(x, y), timeout=0.0)
        err = exc.value
        assert err.timeout == 0.0
        assert err.blocks_done < err.num_blocks == 64
        assert isinstance(err.progress, tuple)

    def test_no_timeout_no_watchdog(self):
        assert _run_saxpy(timeout=None).tobytes() == CLEAN.tobytes()


class TestForcedOverflow:
    def _generic_simd_out(self, faults=None):
        # Non-tight simd region: captures travel through the sharing
        # space, where a forced overflow has a global fallback to hit.
        dev = Device(faults=faults)
        n = 64
        x = dev.from_array("gx", np.arange(n, dtype=np.float64))
        y = dev.from_array("gy", np.zeros(n))

        def pre(tc, ivs, view):
            (i,) = ivs
            yield from tc.compute("alu")
            return {"base": i * 8}

        def body(tc, ivs, view):
            i, j = ivs
            k = int(view["base"]) + j
            v = yield from tc.load(view["x"], k)
            yield from tc.store(view["y"], k, 3.0 * v)

        inner = omp.simd(omp.loop(8, body=body, uses=("x", "y"), name="col"))
        tree = omp.target(omp.teams_distribute_parallel_for(
            n // 8, nested=inner, pre=pre, captures=[("base", "i64")],
            uses=(), name="row"))
        res = omp.launch(dev, tree, num_teams=2, team_size=32, simd_len=8,
                         args={"x": x, "y": y})
        return dev.to_numpy(y), res, dev

    def test_forced_overflow_is_transparent(self):
        clean, _, _ = self._generic_simd_out()
        plan = FaultPlan(seed=21, specs=(FaultSpec("sharing.overflow"),))
        out, res, dev = self._generic_simd_out(faults=plan)
        assert out.tobytes() == clean.tobytes()
        assert plan.counters.forced_overflows > 0
        assert plan.counters.recovered >= plan.counters.forced_overflows
        # Every forced fallback allocation was released again.
        assert res.runtime.sharing_fallbacks >= plan.counters.forced_overflows
        live = {b.name for b in dev.gmem.live_buffers()}
        assert not any("overflow" in name for name in live)


class TestTransientAtomics:
    def _histogram(self, faults=None):
        dev = Device(faults=faults)
        hist = dev.alloc("hist", 8, np.float64)

        def kernel(tc, hist):
            yield from tc.atomic_add(hist, tc.global_tid % 8, 1.0)

        dev.launch(kernel, num_blocks=2, threads_per_block=64, args=(hist,))
        return dev.to_numpy(hist)

    def test_transient_atomic_retries_in_place(self):
        clean = self._histogram()
        plan = FaultPlan(seed=5, specs=(
            FaultSpec("atomic.transient", probability=0.2, attempts=2),))
        out = self._histogram(faults=plan)
        assert out.tobytes() == clean.tobytes()
        assert plan.counters.atomic_transients > 0
        assert plan.counters.unrecovered == 0


@needs_fork
class TestExecutorCrashRecovery:
    def test_worker_crash_no_longer_raises(self):
        plan = FaultPlan(seed=11, specs=(
            FaultSpec("worker.crash", probability=0.7),))
        out = _run_saxpy(
            executor=ParallelExecutor(workers=4, processes=True), faults=plan)
        assert out.tobytes() == CLEAN.tobytes()
        assert plan.counters.worker_crashes > 0
        assert plan.counters.unrecovered == 0

    def test_crash_every_attempt_degrades_and_completes(self):
        plan = FaultPlan(seed=11, specs=(
            FaultSpec("worker.crash", attempts=99),))
        out = _run_saxpy(
            executor=ParallelExecutor(workers=2, processes=True), faults=plan)
        assert out.tobytes() == CLEAN.tobytes()
        assert plan.counters.degradations >= 1


class TestExtras:
    def test_fault_extras_only_when_nonzero(self):
        dev = Device()
        x = dev.from_array("x", np.arange(N, dtype=np.float64))
        y = dev.alloc("y", N, np.float64)
        kc = dev.launch(_saxpy_kernel, num_blocks=4, threads_per_block=64,
                        args=(x, y))
        assert not any(k.startswith("faults") for k in kc.extra)

    def test_fault_extras_report_per_launch_deltas(self):
        plan = FaultPlan(seed=14, specs=(FaultSpec("memory.bitflip"),))
        dev = Device(faults=plan)
        x = dev.from_array("x", np.arange(N, dtype=np.float64))
        y = dev.alloc("y", N, np.float64)
        kc1 = dev.launch(_saxpy_kernel, num_blocks=4, threads_per_block=64,
                         args=(x, y))
        kc2 = dev.launch(_saxpy_kernel, num_blocks=4, threads_per_block=64,
                         args=(x, y))
        # Cumulative plan counters, but per-launch extras.
        assert plan.counters.bitflips == 2
        assert kc1.extra["faults"] == 1.0
        assert kc2.extra["faults"] == 1.0
        assert kc2.extra["faults_recovered"] == 1.0
