"""Campaign runner: recovery must be total, reports must be reproducible."""

import json

import pytest

from repro.faults import campaign
from repro.faults.__main__ import main as faults_main


def small_campaign(seed=campaign.DEFAULT_SEED):
    return campaign.run_campaign(
        seed=seed, kernels=["ideal", "spmv"],
        corpus=("cross-round-race",), workers=2)


class TestCampaign:
    def test_default_seed_campaign_is_clean(self):
        report = small_campaign()
        assert report.ok
        assert report.injected > 0
        assert report.recovered == report.injected
        for row in report.rows:
            assert row["identical"], row
            assert row["unrecovered"] == 0, row

    def test_kernel_targets_have_both_legs(self):
        report = small_campaign()
        legs = {(r["target"], r["leg"]) for r in report.rows}
        assert ("ideal", "serial+faults") in legs
        assert ("spmv", "serial+faults") in legs
        if report.fork:
            assert ("ideal", "fork+faults") in legs
        assert ("corpus/cross-round-race", "sanitizer") in legs

    def test_same_seed_same_report(self):
        a = small_campaign().to_dict()
        b = small_campaign().to_dict()
        assert a == b
        # And it survives a JSON round-trip unchanged (the CLI contract).
        assert json.loads(json.dumps(a, sort_keys=True)) == a

    def test_different_seed_different_draws(self):
        a = campaign.run_campaign(seed=1, kernels=["spmv"], corpus=())
        b = campaign.run_campaign(seed=2, kernels=["spmv"], corpus=())
        assert a.ok and b.ok
        # Injection counts are seed-dependent almost surely; at minimum
        # the reports disagree on the seed itself.
        assert a.to_dict() != b.to_dict()

    def test_unknown_target_raises(self):
        with pytest.raises(KeyError, match="no campaign target"):
            campaign.run_campaign(kernels=["not-a-kernel"], corpus=())

    def test_report_text_mentions_verdict(self):
        report = small_campaign()
        text = report.text()
        assert "PASS" in text
        assert f"seed {campaign.DEFAULT_SEED}" in text


class TestCli:
    def test_cli_small_campaign_exits_zero(self, capsys):
        rc = faults_main(["--kernels", "ideal", "--no-corpus"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_cli_json(self, capsys):
        rc = faults_main(["--kernels", "ideal", "--no-corpus", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True

    def test_cli_list(self, capsys):
        rc = faults_main(["--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in campaign.target_names():
            assert name in out

    def test_cli_bad_target_errors(self):
        with pytest.raises(SystemExit):
            faults_main(["--kernels", "not-a-kernel"])
