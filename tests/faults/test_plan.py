"""FaultPlan mechanics: stateless draws, spec validation, env parsing."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultPlan,
    FaultSpec,
    coerce_faults,
    default_faults,
    set_default_faults,
)
from repro.faults.plan import MAX_LOG, SITES


class TestDraws:
    def test_fires_is_deterministic(self):
        plan = FaultPlan(seed=9, specs=(FaultSpec("worker.crash", 0.5),))
        draws = [plan.fires("worker.crash", chunk=c, attempt=0) is not None
                 for c in range(64)]
        again = FaultPlan(seed=9, specs=(FaultSpec("worker.crash", 0.5),))
        assert draws == [again.fires("worker.crash", chunk=c, attempt=0)
                         is not None for c in range(64)]
        # Roughly half fire; certainly not none and not all.
        assert 8 < sum(draws) < 56

    def test_seed_changes_draws(self):
        a = FaultPlan(seed=1, specs=(FaultSpec("worker.crash", 0.5),))
        b = FaultPlan(seed=2, specs=(FaultSpec("worker.crash", 0.5),))
        da = [a.fires("worker.crash", chunk=c, attempt=0) is not None
              for c in range(64)]
        db = [b.fires("worker.crash", chunk=c, attempt=0) is not None
              for c in range(64)]
        assert da != db

    def test_probability_extremes(self):
        hot = FaultPlan(seed=3, specs=(FaultSpec("atomic.transient", 1.0),))
        cold = FaultPlan(seed=3, specs=(FaultSpec("atomic.transient", 0.0),))
        for lane in range(16):
            assert hot.fires("atomic.transient", block=0, round=0,
                             lane=lane, attempt=0) is not None
            assert cold.fires("atomic.transient", block=0, round=0,
                              lane=lane, attempt=0) is None

    def test_attempts_gate(self):
        plan = FaultPlan(seed=4, specs=(FaultSpec("worker.crash",
                                                  attempts=2),))
        assert plan.fires("worker.crash", chunk=0, attempt=0) is not None
        assert plan.fires("worker.crash", chunk=0, attempt=1) is not None
        assert plan.fires("worker.crash", chunk=0, attempt=2) is None

    def test_match_constrains_coords(self):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec("worker.hang", match=(("chunk", 3),)),))
        assert plan.fires("worker.hang", chunk=3, attempt=0) is not None
        assert plan.fires("worker.hang", chunk=4, attempt=0) is None

    def test_unarmed_site_never_fires(self):
        plan = FaultPlan(seed=6, specs=(FaultSpec("worker.crash", 1.0),))
        assert plan.fires("memory.bitflip", launch=0, attempt=0) is None

    def test_rng_is_keyed_and_stable(self):
        plan = FaultPlan(seed=7)
        a = plan.rng("memory.bitflip", launch=0).random()
        b = FaultPlan(seed=7).rng("memory.bitflip", launch=0).random()
        c = plan.rng("memory.bitflip", launch=1).random()
        assert a == b
        assert a != c


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault site"):
            FaultSpec("warp.melt")

    def test_probability_range(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("worker.crash", probability=1.5)
        with pytest.raises(FaultInjectionError):
            FaultSpec("worker.crash", probability=-0.1)

    def test_attempts_positive(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("worker.crash", attempts=0)

    def test_all_documented_sites_construct(self):
        for site in SITES:
            FaultSpec(site)


class TestRecordAndLog:
    def test_counters_and_log(self):
        plan = FaultPlan(seed=8, specs=(FaultSpec("atomic.transient"),))
        plan.record("atomic.transient", {"block": 0}, recovered=True)
        plan.record("memory.bitflip", {"launch": 1}, recovered=False)
        assert plan.counters.atomic_transients == 1
        assert plan.counters.bitflips == 1
        assert plan.counters.recovered == 1
        assert plan.counters.unrecovered == 1
        assert plan.counters.injected == 2
        assert len(plan.log) == 2
        assert "atomic.transient" in plan.describe()

    def test_log_is_capped(self):
        plan = FaultPlan(seed=8)
        for i in range(MAX_LOG + 50):
            plan.record("atomic.transient", {"i": i}, recovered=True)
        assert len(plan.log) == MAX_LOG
        assert "more (log capped)" in plan.describe()


class TestEnvParsing:
    def test_off_spellings(self):
        for spec in ("", "off", "none", None):
            assert coerce_faults(spec) is None

    def test_bare_seed_is_inert_plan(self):
        plan = coerce_faults("42")
        assert plan.seed == 42
        assert plan.specs == ()

    def test_sites_and_probabilities(self):
        plan = coerce_faults("42:worker.crash=0.5,sharing.overflow")
        assert plan.seed == 42
        sites = {s.site: s.probability for s in plan.specs}
        assert sites == {"worker.crash": 0.5, "sharing.overflow": 1.0}

    def test_plan_passes_through(self):
        plan = FaultPlan(seed=1)
        assert coerce_faults(plan) is plan

    def test_bad_specs_raise(self):
        with pytest.raises(FaultInjectionError):
            coerce_faults("notanumber")
        with pytest.raises(FaultInjectionError):
            coerce_faults("1:worker.crash=banana")
        with pytest.raises(FaultInjectionError):
            coerce_faults("1:warp.melt")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "7:atomic.transient=0.1")
        plan = default_faults()
        assert plan.seed == 7
        assert plan.specs[0].site == "atomic.transient"
        monkeypatch.setenv("REPRO_FAULTS", "off")
        assert default_faults() is None

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "7:atomic.transient")
        mine = FaultPlan(seed=99)
        set_default_faults(mine)
        try:
            assert default_faults() is mine
            set_default_faults(False)  # force-off overrides the env too
            assert default_faults() is None
        finally:
            set_default_faults(None)
        assert default_faults() is not None  # env visible again
