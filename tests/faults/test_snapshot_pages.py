"""O(dirty-page) MemorySnapshot semantics: chaining, epochs, restore.

The snapshot's cost model changed (construction/restore proportional to
dirtied pages, ``base=`` chaining for retry ladders and serve cloning);
these tests pin the *semantics* that must not have changed with it —
restore is bit-exact, interleaved snapshots stay correct via the epoch
fallback, and a consumed base refuses further use.
"""

import numpy as np
import pytest

from repro.errors import MemoryFault
from repro.faults.scrub import MemorySnapshot
from repro.gpu.memory import PAGE_ELEMS, GlobalMemory


def make_gmem(n=8 * PAGE_ELEMS):
    gmem = GlobalMemory()
    buf = gmem.from_array("state", np.arange(float(n)))
    return gmem, buf


class TestRestore:
    def test_restore_is_bit_exact(self):
        gmem, buf = make_gmem()
        before = buf.to_numpy()
        snap = MemorySnapshot(gmem)
        buf.write(3, -1.0)
        buf.scatter(slice(PAGE_ELEMS, PAGE_ELEMS + 4), np.full(4, -2.0))
        snap.restore()
        np.testing.assert_array_equal(buf.to_numpy(), before)

    def test_restore_only_copies_dirty_pages(self):
        gmem, buf = make_gmem()
        snap = MemorySnapshot(gmem)
        # Corrupt a page *without* marking it (host-side raw poke), then
        # dirty a different one: O(dirty) restore must fix only the
        # marked page.  This is the documented contract — all device
        # mutations go through marked paths; raw data pokes do not.
        buf.data[0] = -7.0
        buf.write(PAGE_ELEMS, -8.0)
        snap.restore()
        assert buf.data[PAGE_ELEMS] == float(PAGE_ELEMS)  # marked: fixed
        assert buf.data[0] == -7.0  # unmarked: out of contract, kept

    def test_restore_frees_post_mark_allocations(self):
        gmem, buf = make_gmem()
        snap = MemorySnapshot(gmem)
        extra = gmem.alloc("kernel_time", 64, np.float64)
        snap.restore()
        with pytest.raises(MemoryFault):
            gmem.lookup(extra.handle)

    def test_repeated_restore_stays_correct(self):
        gmem, buf = make_gmem()
        before = buf.to_numpy()
        snap = MemorySnapshot(gmem)
        for round_ in range(3):
            buf.write(round_, 100.0 + round_)
            snap.restore()
            np.testing.assert_array_equal(buf.to_numpy(), before)


class TestChaining:
    def test_chained_snapshot_equals_fresh(self):
        gmem, buf = make_gmem()
        s1 = MemorySnapshot(gmem)
        buf.write(5, -1.0)
        after_write = buf.to_numpy()
        s2 = MemorySnapshot(gmem, base=s1)
        buf.write(5, -2.0)
        buf.write(2 * PAGE_ELEMS, -3.0)
        s2.restore()
        np.testing.assert_array_equal(buf.to_numpy(), after_write)

    def test_chained_scrub_detects_and_repairs(self):
        gmem, buf = make_gmem()
        s1 = MemorySnapshot(gmem)
        buf.write(0, 42.0)
        s2 = MemorySnapshot(gmem, base=s1)
        want = buf.to_numpy()
        buf.flip_bit(PAGE_ELEMS + 1, 3)
        assert s2.scrub() == 1
        np.testing.assert_array_equal(buf.to_numpy(), want)

    def test_consumed_base_refuses_use(self):
        gmem, buf = make_gmem()
        s1 = MemorySnapshot(gmem)
        MemorySnapshot(gmem, base=s1)
        with pytest.raises(RuntimeError, match="consumed"):
            s1.restore()
        with pytest.raises(ValueError, match="consumed"):
            MemorySnapshot(gmem, base=s1)

    def test_chain_across_new_allocations(self):
        gmem, buf = make_gmem()
        s1 = MemorySnapshot(gmem)
        extra = gmem.from_array("extra", np.ones(PAGE_ELEMS))
        s2 = MemorySnapshot(gmem, base=s1)
        extra.write(0, -1.0)
        buf.write(0, -1.0)
        s2.restore()
        assert extra.data[0] == 1.0
        assert buf.data[0] == 0.0

    def test_chain_after_restore_is_o_dirty_and_correct(self):
        gmem, buf = make_gmem()
        want = buf.to_numpy()
        snap = MemorySnapshot(gmem)
        for attempt in range(3):
            buf.write(attempt, -float(attempt + 1))
            snap.restore()
            snap = MemorySnapshot(gmem, base=snap)
            np.testing.assert_array_equal(buf.to_numpy(), want)


class TestEpochFallback:
    def test_interleaved_snapshot_falls_back_to_full_copy(self):
        gmem, buf = make_gmem()
        s1 = MemorySnapshot(gmem)
        buf.write(0, -1.0)
        # An unrelated, un-chained snapshot clears the dirty bits s1 was
        # counting on...
        MemorySnapshot(gmem)
        buf.write(PAGE_ELEMS, -2.0)
        # ...so s1 must detect the epoch mismatch and restore fully.
        s1.restore()
        assert buf.data[0] == 0.0
        assert buf.data[PAGE_ELEMS] == float(PAGE_ELEMS)
