"""Self-healing worker pool: crash/hang retry, degradation, diagnostics.

Worker faults are injected only inside the forked child
(:func:`repro.exec.pool._child_main`), so the in-process degradation rung
is always fault-free — these tests never ``os._exit`` the test process.
"""

import pytest

from repro.exec import WorkerError, fork_available, fork_map
from repro.exec.pool import (
    INJECTED_CRASH_EXIT,
    RetryPolicy,
    STAT_KEYS,
    describe_exit,
)
from repro.faults import FaultPlan, FaultSpec

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork worker processes"
)

TASKS = list(range(24))


def square(task):
    return task * task


EXPECT = [("ok", square(t)) for t in TASKS]


def crash_plan(prob=1.0, attempts=1, seed=11):
    return FaultPlan(seed=seed, specs=(
        FaultSpec("worker.crash", probability=prob, attempts=attempts),))


@needs_fork
class TestCrashRecovery:
    def test_crash_is_retried_transparently(self):
        stats = {}
        plan = crash_plan(prob=1.0, attempts=1)
        out = fork_map(square, TASKS, workers=4, faults=plan, stats=stats)
        assert out == EXPECT
        assert stats["worker_deaths"] == 4  # every first-attempt chunk died
        assert stats["chunk_retries"] >= 1
        assert stats["degraded_chunks"] == 0
        assert plan.counters.worker_crashes == 4
        assert plan.counters.recovered == 4

    def test_redistribution_across_survivors(self):
        stats = {}
        # Probability 0.5: some chunks die, some survive; the dead ones
        # are re-chunked across the pool.
        plan = crash_plan(prob=0.5, attempts=1, seed=29)
        out = fork_map(square, TASKS, workers=4, faults=plan, stats=stats)
        assert out == EXPECT
        assert 0 < stats["worker_deaths"] < 4

    def test_degrades_to_in_process_when_retries_exhausted(self):
        stats = {}
        plan = crash_plan(prob=1.0, attempts=99)  # crash every attempt
        policy = RetryPolicy(max_retries=2, backoff=0.0)
        out = fork_map(square, TASKS, workers=2, faults=plan,
                       retry=policy, stats=stats)
        assert out == EXPECT
        assert stats["degraded_chunks"] >= 1
        assert stats["degraded_tasks"] >= 1
        assert plan.counters.degradations == 1

    def test_recover_false_raises_with_diagnostics(self):
        plan = crash_plan(prob=1.0, attempts=99)
        policy = RetryPolicy(max_retries=1, backoff=0.0)
        with pytest.raises(WorkerError) as exc:
            fork_map(square, TASKS, workers=2, faults=plan,
                     retry=policy, recover=False)
        msg = str(exc.value)
        assert "died" in msg
        assert f"exit code {INJECTED_CRASH_EXIT}" in msg
        assert "tasks" in msg  # names the lost task ranges


@needs_fork
class TestHangRecovery:
    def test_hung_worker_is_reaped_and_retried(self):
        stats = {}
        plan = FaultPlan(seed=13, specs=(
            FaultSpec("worker.hang", match=(("chunk", 0),)),))
        policy = RetryPolicy(max_retries=2, backoff=0.0, hang_timeout=0.3)
        out = fork_map(square, TASKS, workers=4, faults=plan,
                       retry=policy, stats=stats)
        assert out == EXPECT
        assert stats["worker_hangs"] == 1
        assert plan.counters.worker_hangs == 1
        assert plan.counters.recovered == 1

    def test_fault_plan_implies_default_hang_timeout(self):
        # With a plan attached, fork_map arms a finite watchdog even when
        # the policy leaves hang_timeout unset — an injected hang must
        # never hang the suite.
        plan = FaultPlan(seed=13, specs=(
            FaultSpec("worker.hang", match=(("chunk", 0),)),))
        out = fork_map(square, TASKS, workers=4, faults=plan)
        assert out == EXPECT


class TestDiagnostics:
    def test_describe_exit_signal(self):
        assert describe_exit(-15) == "killed by SIGTERM"
        assert describe_exit(-9) == "killed by SIGKILL"

    def test_describe_exit_code(self):
        assert describe_exit(3) == "exit code 3"
        assert describe_exit(None) == "no exit status"

    def test_stats_schema_always_seeded(self):
        stats = {}
        out = fork_map(square, TASKS, workers=1, stats=stats)
        assert out == EXPECT
        assert set(STAT_KEYS) <= set(stats)
        assert all(v == 0 for v in stats.values())


class TestOffPath:
    def test_no_plan_means_no_fault_machinery(self):
        # workers=1 short-circuits to the plain in-process path.
        assert fork_map(square, TASKS, workers=1) == EXPECT

    @needs_fork
    def test_forked_without_plan_matches_serial(self):
        assert fork_map(square, TASKS, workers=4) == EXPECT
