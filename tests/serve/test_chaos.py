"""Bounded chaos-campaign smoke: the full SIGKILL/restart loop, small.

The CI acceptance campaign is 25 cycles (``python -m repro.serve chaos``);
this keeps a two-cycle version inside the normal test run so a regression
in the journal/recovery/verdict machinery fails fast and locally, not
only in the chaos-smoke job.
"""

from __future__ import annotations

import argparse
import asyncio

import pytest

from repro.serve.chaos import DEFAULT_SITES, run_campaign

needs_fork = pytest.mark.skipif(
    not hasattr(__import__("os"), "fork"), reason="requires os.fork")


def _args(**kw):
    base = dict(cycles=2, seed=2023, clients=2, requests=3, pool=0,
                sites=DEFAULT_SITES, budget=120.0, artifacts=None)
    base.update(kw)
    return argparse.Namespace(**base)


@needs_fork
def test_two_cycle_campaign_exactly_once(catalog):
    verdict = asyncio.run(run_campaign(_args()))
    assert verdict["ok"], verdict["problems"]
    assert verdict["boots"] >= 3  # initial boot + one restart per cycle
    assert verdict["acked"] == 2 * 3
    # Every acked request has exactly one durable done record.
    assert verdict["journal_records"] >= verdict["acked"]
