"""Stream primitive: ordered within a stream, concurrent across streams.

Covers the ordering contract, handle semantics (result/exception/
timeout), error isolation (a failed launch poisons its handle, not the
stream), synchronize, close, and the ``omp.launch(..., stream=)``
integration that the serve tier's per-stream lanes mirror.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import omp
from repro.gpu.device import Device
from repro.serve import Stream
from repro.serve.demo import DEMO_N

from serve_helpers import make_args


class TestOrdering:
    def test_submissions_run_in_fifo_order(self):
        order = []
        with Stream("s") as s:
            handles = [s.submit(lambda i=i: order.append(i) or i)
                       for i in range(32)]
            assert [h.result(5) for h in handles] == list(range(32))
        assert order == list(range(32))

    def test_streams_progress_concurrently(self):
        """A blocked stream must not stall an independent stream."""
        gate = threading.Event()
        with Stream("slow") as slow, Stream("fast") as fast:
            blocked = slow.submit(lambda: gate.wait(10))
            quick = fast.submit(lambda: "done")
            assert quick.result(5) == "done"
            assert not blocked.done()
            gate.set()
            assert blocked.result(5) is True

    def test_dependent_state_observed_in_order(self):
        """Launch N+1 sees launch N's writes (the CUDA stream contract)."""
        cell = {"v": 0}

        def bump():
            v = cell["v"]
            time.sleep(0.001)
            cell["v"] = v + 1
            return cell["v"]

        with Stream() as s:
            handles = [s.submit(bump) for _ in range(16)]
            assert [h.result(5) for h in handles] == list(range(1, 17))


class TestHandles:
    def test_error_rejects_handle_not_stream(self):
        with Stream() as s:
            bad = s.submit(lambda: 1 / 0)
            good = s.submit(lambda: 42)
            with pytest.raises(ZeroDivisionError):
                bad.result(5)
            assert bad.exception(5) is not None
            assert good.result(5) == 42
            assert good.exception(5) is None

    def test_result_timeout(self):
        gate = threading.Event()
        with Stream() as s:
            h = s.submit(lambda: gate.wait(10))
            with pytest.raises(TimeoutError):
                h.result(0.01)
            gate.set()
            h.result(5)

    def test_synchronize_waits_for_all(self):
        done = []
        with Stream() as s:
            for i in range(8):
                s.submit(lambda i=i: (time.sleep(0.002), done.append(i)))
            s.synchronize(5)
            assert done == list(range(8))
            assert s.pending == 0

    def test_submit_after_close_raises(self):
        s = Stream()
        s.close()
        with pytest.raises(RuntimeError):
            s.submit(lambda: 1)
        s.close()  # idempotent


class TestLaunchIntegration:
    def test_launch_stream_returns_handle(self, catalog):
        dev = Device()
        rng = np.random.default_rng(0)
        args = make_args("axpy", rng)
        bufs = {n: dev.from_array(n, v.copy()) for n, v in args.items()}
        with Stream() as s:
            handle = omp.launch(dev, catalog.get("axpy"), num_teams=2,
                                team_size=64, args=bufs, stream=s)
            res = handle.result(30)
        assert res.counters.cycles > 0
        np.testing.assert_array_equal(
            bufs["y"].to_numpy(), 2.0 * args["x"] + args["y"])

    def test_streamed_launches_match_sync_launches(self, catalog):
        rng = np.random.default_rng(1)
        specs = [make_args("axpy", rng) for _ in range(4)]

        def run(stream):
            dev = Device()
            handles = []
            bufs_all = []
            for i, args in enumerate(specs):
                bufs = {n: dev.from_array(f"{i}:{n}", v.copy())
                        for n, v in args.items()}
                bufs_all.append(bufs)
                handles.append(omp.launch(
                    dev, catalog.get("axpy"), num_teams=1 + i % 3,
                    team_size=64, args=bufs, stream=stream))
            results = [h.result(30) if stream else h for h in handles]
            return ([b["y"].to_numpy() for b in bufs_all],
                    [r.counters.cycles for r in results])

        with Stream() as s:
            ys_stream, cyc_stream = run(s)
        ys_sync, cyc_sync = run(None)
        for a, b in zip(ys_stream, ys_sync):
            assert np.array_equal(a, b)
        assert cyc_stream == cyc_sync
