"""FairScheduler: DRR weighted fairness, admission control, fault hook.

The fairness assertion is the real contract: under sustained skewed
load (one tenant flooding, one trickling), dispatched block-cost must
converge to the configured weight ratio — a flood cannot starve a
light tenant.  Admission tests pin the typed-reject surface
(``Backpressure.reason``, ``retry_after``) and the deterministic
``serve.reject`` fault site.
"""

from __future__ import annotations

import pytest

from repro.faults import coerce_faults
from repro.serve.scheduler import Backpressure, FairScheduler


def _drain(sched, rounds=10**6, **kw):
    out = []
    for _ in range(rounds):
        batch = sched.next_batch(**kw)
        if not batch:
            break
        out.extend(batch)
    return out


class TestFairness:
    def test_equal_weights_interleave(self):
        s = FairScheduler(quantum=4)
        for i in range(8):
            s.submit(("a", i), tenant="a", cost=1.0)
        for i in range(8):
            s.submit(("b", i), tenant="b", cost=1.0)
        batch = s.next_batch(max_items=8)
        # One round offers both tenants equal deficit: 4 items each.
        assert sum(1 for t, _ in batch if t == "a") == 4
        assert sum(1 for t, _ in batch if t == "b") == 4

    def test_weighted_share_under_skew(self):
        """Tenant 'heavy' floods; 'light' trickles with 3x weight.
        Dispatched cost per round must track the 3:1 weight ratio."""
        s = FairScheduler(quantum=4)
        s.set_weight("light", 3.0)
        s.set_weight("heavy", 1.0)
        for i in range(300):
            s.submit(("heavy", i), tenant="heavy", cost=1.0)
        for i in range(100):
            s.submit(("light", i), tenant="light", cost=1.0)
        # Drain while both are backlogged; stop once light runs dry.
        taken = {"heavy": 0, "light": 0}
        while True:
            batch = s.next_batch(max_items=16)
            if not batch:
                break
            for t, _ in batch:
                taken[t] += 1
            if taken["light"] >= 100:
                break
        # While contended, light got ~3x heavy's share.
        assert taken["light"] == 100
        ratio = taken["light"] / max(taken["heavy"], 1)
        assert 2.0 <= ratio <= 4.0, (taken, ratio)

    def test_flood_cannot_starve_light_tenant(self):
        s = FairScheduler(quantum=2)
        for i in range(500):
            s.submit(("flood", i), tenant="flood", cost=1.0)
        s.submit(("light", 0), tenant="light", cost=1.0)
        batch = s.next_batch(max_items=4)
        assert ("light", 0) in batch

    def test_expensive_request_waits_for_deficit(self):
        """A request costing more than one round's deficit dispatches
        only after enough rounds accrue — cheap tenants keep flowing."""
        s = FairScheduler(quantum=2)
        s.submit("big", tenant="big", cost=5.0)
        s.submit("small", tenant="small", cost=1.0)
        first = s.next_batch(max_items=8)
        assert first == ["small"]  # big's deficit (2) < cost (5)
        # Keep big backlogged; rounds 2 and 3 accrue 4 and 6.
        assert s.next_batch(max_items=8) == []
        assert s.next_batch(max_items=8) == ["big"]

    def test_idle_tenant_does_not_bank_credit(self):
        s = FairScheduler(quantum=4)
        s.submit("x", tenant="bursty", cost=1.0)
        assert s.next_batch() == ["x"]  # queue empties -> deficit reset
        snap_before = s.snapshot()["bursty"]
        for i in range(10):
            s.submit(i, tenant="bursty", cost=1.0)
        s.submit("y", tenant="other", cost=1.0)
        batch = s.next_batch(max_items=8)
        # bursty gets exactly one fresh quantum (4), not banked credit.
        assert sum(1 for b in batch if b != "y") == 4
        assert snap_before["depth"] == 0.0


class TestAdmission:
    def test_queue_full_reject(self):
        s = FairScheduler(max_queue=2)
        s.submit(1)
        s.submit(2)
        with pytest.raises(Backpressure) as exc:
            s.submit(3)
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after > 0
        assert s.rejects["queue_full"] == 1
        d = exc.value.as_dict()
        assert d["reason"] == "queue_full"

    def test_tenant_queue_full_reject(self):
        s = FairScheduler(max_queue=100, max_tenant_queue=1)
        s.submit(1, tenant="a")
        with pytest.raises(Backpressure) as exc:
            s.submit(2, tenant="a")
        assert exc.value.reason == "tenant_queue_full"
        assert exc.value.tenant == "a"
        s.submit(3, tenant="b")  # other tenants unaffected

    def test_depth_tracks_submit_and_dispatch(self):
        s = FairScheduler()
        for i in range(5):
            s.submit(i)
        assert s.depth == 5
        got = _drain(s)
        assert sorted(got) == list(range(5))
        assert s.depth == 0

    def test_invalid_weight_rejected(self):
        s = FairScheduler()
        with pytest.raises(ValueError):
            s.set_weight("t", 0.0)


class TestFaultInjection:
    def test_serve_reject_site_fires_deterministically(self):
        plan = coerce_faults("11:serve.reject=0.5")
        s1 = FairScheduler(faults=plan)
        s2 = FairScheduler(faults=coerce_faults("11:serve.reject=0.5"))
        outcomes1, outcomes2 = [], []
        for sched, outcomes in ((s1, outcomes1), (s2, outcomes2)):
            for i in range(40):
                try:
                    sched.submit(i, tenant=f"t{i % 3}")
                    outcomes.append("ok")
                except Backpressure as bp:
                    assert bp.reason == "injected"
                    outcomes.append("reject")
        assert outcomes1 == outcomes2  # same seed -> same draw sequence
        assert "reject" in outcomes1 and "ok" in outcomes1
        assert s1.rejects["injected"] == outcomes1.count("reject")
        assert plan.counters.forced_rejects == outcomes1.count("reject")

    def test_no_plan_means_no_injection(self):
        s = FairScheduler()
        for i in range(100):
            s.submit(i)
        assert s.rejects == {}
