"""``recycle()``: in-place rebinding of a prepared request.

The cheap-cloning path for sustained same-shape traffic must be
observationally identical to a fresh :func:`~repro.serve.batch.prepare`
— same outputs bitwise, same counters — while reusing the previous
request's buffers (no allocator churn: ``live_bytes`` and the address
high-water stay flat across the recycle loop).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.serve.batch as B
from repro.errors import LaunchError
from repro.gpu.device import Device

from serve_helpers import make_args


def _run(dev, prepared):
    (out,) = B.run_batch(dev, [prepared])
    out.raise_for_error()
    return out


class TestRecycleEquivalence:
    @pytest.mark.parametrize("kernel", ["axpy", "scale_sum"])
    def test_recycled_matches_fresh_prepare(self, catalog, kernel):
        rng = np.random.default_rng(7)
        first = make_args(kernel, rng)
        second = make_args(kernel, rng)

        dev = Device()
        p = B.prepare(dev, catalog, kernel, first, num_teams=2,
                      team_size=64, tag="warm")
        _run(dev, p)
        B.recycle(dev, catalog, p, second)
        got = _run(dev, p)

        fresh_dev = Device()
        q = B.prepare(fresh_dev, catalog, kernel,
                      {n: v.copy() for n, v in second.items()},
                      num_teams=2, team_size=64, tag="fresh")
        want = _run(fresh_dev, q)

        assert sorted(got.outputs) == sorted(want.outputs)
        for name in want.outputs:
            np.testing.assert_array_equal(got.outputs[name],
                                          want.outputs[name])
        assert got.counters.extra == want.counters.extra
        B.release(dev, p)
        B.release(fresh_dev, q)

    def test_recycle_loop_keeps_allocator_flat(self, catalog):
        rng = np.random.default_rng(11)
        dev = Device()
        p = B.prepare(dev, catalog, "axpy", make_args("axpy", rng),
                      num_teams=2, team_size=64, tag="loop")
        _run(dev, p)
        live = dev.gmem.live_bytes
        high = dev.gmem.address_high_water
        for _ in range(5):
            mark = dev.gmem.mark()
            B.recycle(dev, catalog, p, make_args("axpy", rng))
            _run(dev, p)
            # Kernel-time allocations (per-team runtime scratch) are
            # left live by every launch, recycled or not; release them
            # so the assertion isolates recycle's own footprint.
            for buf in dev.gmem.allocated_since(mark):
                dev.gmem.free(buf)
            assert dev.gmem.live_bytes == live
            assert dev.gmem.address_high_water == high
        B.release(dev, p)

    def test_recycle_keeps_buffer_identity(self, catalog):
        rng = np.random.default_rng(3)
        dev = Device()
        p = B.prepare(dev, catalog, "axpy", make_args("axpy", rng),
                      num_teams=2, team_size=64)
        handles = {n: b.handle for n, b in p.buffers.items()}
        B.recycle(dev, catalog, p, make_args("axpy", rng))
        assert {n: b.handle for n, b in p.buffers.items()} == handles
        B.release(dev, p)


class TestRecycleRejection:
    def test_wrong_arg_names(self, catalog):
        rng = np.random.default_rng(5)
        dev = Device()
        p = B.prepare(dev, catalog, "axpy", make_args("axpy", rng),
                      num_teams=2, team_size=64)
        bad = make_args("axpy", rng)
        bad["z"] = bad.pop("y")
        with pytest.raises(LaunchError, match="arg mismatch"):
            B.recycle(dev, catalog, p, bad)
        B.release(dev, p)

    def test_wrong_shape(self, catalog):
        rng = np.random.default_rng(5)
        dev = Device()
        p = B.prepare(dev, catalog, "axpy", make_args("axpy", rng),
                      num_teams=2, team_size=64)
        bad = make_args("axpy", rng)
        bad["x"] = bad["x"][:-1]
        with pytest.raises(LaunchError, match="shape/dtype mismatch"):
            B.recycle(dev, catalog, p, bad)
        B.release(dev, p)
