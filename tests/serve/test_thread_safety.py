"""Thread-safety regressions for the serve tier's shared state.

The serve tier runs launches from worker threads while the asyncio
loop flips configuration, so the process-wide singletons it touches
must be safe under contention: the JIT verdict cache (whose FIFO trim
is a compound read-modify-write), the default-executor and
default-faults overrides, and ``Device.launch`` itself (serialized on
``Device.lock``).  Each test hammers one surface from many threads and
asserts both "no exception / no corruption" and the semantic
invariant that survives interleaving.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import omp
from repro.exec import SerialExecutor, default_executor, set_default_executor
from repro.faults import coerce_faults, default_faults, set_default_faults
from repro.gpu.device import Device
from repro.jit.trace import TraceCache

from serve_helpers import make_args

THREADS = 8
ITERS = 400


def _hammer(worker, threads=THREADS):
    """Run ``worker(tid)`` on N threads; re-raise the first error."""
    errors = []
    barrier = threading.Barrier(threads)

    def wrap(tid):
        try:
            barrier.wait(10)
            worker(tid)
        except BaseException as err:  # noqa: BLE001 - surface everything
            errors.append(err)

    ts = [threading.Thread(target=wrap, args=(t,)) for t in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(60)
    if errors:
        raise errors[0]


class TestTraceCache:
    def test_concurrent_store_lookup_trim(self):
        cache = TraceCache(cap=32)

        def worker(tid):
            for i in range(ITERS):
                key = (tid, i % 48)  # > cap: trim constantly active
                cache.store(key, None if i % 3 else "deopt")
                verdict, found = cache.lookup(key)
                assert found
                cache.lookup((tid, (i + 7) % 48))

        _hammer(worker)
        assert len(cache) <= 32

    def test_concurrent_clear_is_safe(self):
        cache = TraceCache(cap=16)

        def worker(tid):
            for i in range(ITERS):
                if tid == 0 and i % 10 == 0:
                    cache.clear()
                else:
                    cache.store((tid, i % 20), None)
                    cache.lookup((tid, i % 20))

        _hammer(worker)
        assert len(cache) <= 16


class TestDefaultOverrides:
    def test_executor_flip_under_concurrent_resolution(self):
        serial = SerialExecutor()

        def worker(tid):
            for i in range(ITERS):
                if tid % 2 == 0:
                    set_default_executor(serial if i % 2 else None)
                else:
                    ex = default_executor()
                    # Never a torn/invalid value: always an executor.
                    assert hasattr(ex, "execute")

        try:
            _hammer(worker)
        finally:
            set_default_executor(None)

    def test_faults_flip_under_concurrent_resolution(self):
        plan = coerce_faults("5:worker.crash=0.1")
        try:
            def worker(tid):
                for i in range(ITERS):
                    if tid % 2 == 0:
                        set_default_faults(
                            (plan, None, False)[i % 3])
                    else:
                        active = default_faults()
                        assert active is None or active is plan
            _hammer(worker)
        finally:
            set_default_faults(None)


class TestDeviceLaunchSerialization:
    def test_concurrent_launches_one_device_are_correct(self, catalog):
        """Many threads launching on ONE device: Device.lock serializes
        them, so every result matches its solo ground truth."""
        dev = Device()
        rng = np.random.default_rng(1)
        cases = [make_args("axpy", rng) for _ in range(THREADS)]
        results = [None] * THREADS

        def worker(tid):
            args = cases[tid]
            bufs = {n: dev.from_array(f"{tid}:{n}", v.copy())
                    for n, v in args.items()}
            omp.launch(dev, catalog.get("axpy"), num_teams=2,
                       team_size=64, args=bufs)
            results[tid] = bufs["y"].to_numpy()

        _hammer(worker)
        for tid, args in enumerate(cases):
            solo = Device()
            bufs = {n: solo.from_array(n, v.copy())
                    for n, v in args.items()}
            omp.launch(solo, catalog.get("axpy"), num_teams=2,
                       team_size=64, args=bufs)
            assert np.array_equal(results[tid], bufs["y"].to_numpy()), tid
