"""Helpers shared by the serve-tier tests."""

from __future__ import annotations

import numpy as np

from repro.serve.demo import DEMO_N


def make_args(kernel: str, rng: np.random.Generator) -> dict:
    """Fresh argument arrays for a demo kernel."""
    args = {"x": rng.standard_normal(DEMO_N)}
    if kernel == "scale_sum":
        args["y"] = np.zeros(DEMO_N)
        args["acc"] = np.zeros(1)
    else:
        args["y"] = rng.standard_normal(DEMO_N)
    return args
