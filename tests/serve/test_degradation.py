"""Graceful degradation: client deadlines, drain-mode shutdown, and the
per-tenant circuit breaker.

Overload and shutdown must shed load with *typed* rejects
(:class:`Backpressure` with a machine-readable reason) rather than
unbounded queueing, silent drops, or hung clients — and a tenant whose
requests deterministically fail must get a fast circuit-open reject
instead of burning device time.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.serve import (Backpressure, CircuitBreaker, FairScheduler,
                         LaunchService)
from repro.serve.server import LaunchRequest

from serve_helpers import make_args


def _service(catalog, **kw):
    kw.setdefault("scheduler", FairScheduler(max_queue=4096))
    return LaunchService(Device(), catalog, **kw)


def _request(kernel, args, **kw):
    return LaunchRequest(kernel=kernel,
                         args={k: v.copy() for k, v in args.items()},
                         num_teams=2, team_size=64, **kw)


class TestDeadlines:
    def test_expired_deadline_is_shed_with_typed_reject(self, catalog):
        async def main():
            service = _service(catalog, batch_window=0.02)
            rng = np.random.default_rng(11)
            args = make_args("axpy", rng)
            async with service:
                with pytest.raises(Backpressure) as info:
                    # Zero patience: the entry is already expired when
                    # the pump looks, so it is shed unstarted.
                    await service.submit(
                        _request("axpy", args, deadline_ms=0.0))
            return service, info.value

        service, bp = asyncio.run(main())
        assert bp.reason == "deadline"
        assert service.scheduler.rejects.get("deadline", 0) >= 1
        assert service.stats["completed"] == 0

    def test_generous_deadline_completes(self, catalog):
        async def main():
            service = _service(catalog)
            rng = np.random.default_rng(12)
            args = make_args("axpy", rng)
            async with service:
                return await service.submit(
                    _request("axpy", args, deadline_ms=30_000.0))

        outcome = asyncio.run(main())
        assert outcome.error is None
        assert outcome.outputs


class TestDrain:
    def test_drain_rejects_new_and_finishes_inflight(self, catalog):
        async def main():
            service = _service(catalog)
            rng = np.random.default_rng(13)
            args = make_args("square", rng)
            async with service:
                inflight = asyncio.ensure_future(
                    service.submit(_request("square", args)))
                await asyncio.sleep(0)
                service.begin_drain()
                with pytest.raises(Backpressure) as info:
                    await service.submit(_request("square", args))
                assert info.value.reason == "draining"
                outcome = await inflight
                await asyncio.wait_for(service.drain(), timeout=5.0)
            return service, outcome

        service, outcome = asyncio.run(main())
        # The pre-drain request finished normally; only the late one was
        # turned away.
        assert outcome.error is None
        assert service.stats["completed"] == 1
        assert service.stats["rejected"] == 1


class TestCircuitBreakerUnit:
    def test_trips_after_threshold_and_recovers_via_probe(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown=10.0,
                                 clock=lambda: now[0])
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow()
        now[0] = 9.9
        assert not breaker.allow()
        now[0] = 10.0
        # Cooldown elapsed: exactly one probe passes, the line holds.
        assert breaker.allow()
        assert breaker.state == "half_open"
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=5.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        now[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 2
        assert not breaker.allow()


class TestServiceBreaker:
    def test_failing_tenant_trips_breaker_then_recovers(self, catalog):
        async def main():
            service = _service(catalog, breaker_threshold=2,
                               breaker_cooldown=0.05)
            rng = np.random.default_rng(14)
            good = make_args("axpy", rng)
            async with service:
                for _ in range(2):
                    with pytest.raises(LaunchError):
                        await service.submit(_request("no_such_kernel", {}))
                with pytest.raises(Backpressure) as info:
                    await service.submit(_request("axpy", good))
                assert info.value.reason == "circuit_open"
                state_open = service._breakers["default"].snapshot()
                await asyncio.sleep(0.06)
                # Post-cooldown probe succeeds and closes the breaker.
                outcome = await service.submit(_request("axpy", good))
            return service, state_open, outcome

        service, state_open, outcome = asyncio.run(main())
        assert state_open["state"] == "open"
        assert outcome.error is None
        assert service._breakers["default"].state == "closed"
        assert service.stats["errors"] == 2

    def test_other_tenants_unaffected_by_open_breaker(self, catalog):
        async def main():
            service = _service(catalog, breaker_threshold=1,
                               breaker_cooldown=60.0)
            rng = np.random.default_rng(15)
            args = make_args("axpy", rng)
            async with service:
                with pytest.raises(LaunchError):
                    await service.submit(
                        _request("no_such_kernel", {}, tenant="noisy"))
                with pytest.raises(Backpressure):
                    await service.submit(
                        _request("axpy", args, tenant="noisy"))
                return await service.submit(
                    _request("axpy", args, tenant="quiet"))

        outcome = asyncio.run(main())
        assert outcome.error is None


class TestTcpOps:
    def test_health_and_stats_surface_degradation_state(self, catalog):
        async def main():
            service = _service(catalog)
            server = await service.serve_tcp("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)

            async def ask(payload):
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            health = await ask({"op": "health"})
            stats = await ask({"op": "stats"})
            service.begin_drain()
            draining = await ask({"op": "health"})
            writer.close()
            server.close()
            await server.wait_closed()
            await service.stop()
            return health, stats, draining

        health, stats, draining = asyncio.run(main())
        assert health["ok"] and health["ready"]
        assert health["draining"] is False
        assert draining["draining"] is True
        for key in ("stats", "rejects", "respawns", "forced_rejects",
                    "breakers", "journal"):
            assert key in stats
