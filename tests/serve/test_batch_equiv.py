"""Batched merged launches must be bit-identical to solo launches.

This is the serve tier's core correctness contract: coalescing N
compatible requests into one segmented grid changes *scheduling*, never
*semantics*.  Every case runs each request solo on a fresh device (the
ground truth) and once through :func:`repro.serve.batch.run_batch` on a
shared device, then compares memory images, cycle counts, per-block
counters, and counter extras bit-for-bit — across the
``fast``/``jit`` round engines and the serial/parallel executors (the
same matrix the CI legs pin via ``REPRO_ENGINE``/``REPRO_EXECUTOR``).

The one deliberate carve-out (documented in ``docs/SERVE.md``): solo
jit launches attach launch-scoped telemetry (``extra["engine"]``,
``extra["jit_*"]``) that cannot be attributed per-request inside a
merged grid, so those keys are stripped before comparing extras.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import omp
from repro.errors import MemoryFault
from repro.exec import ParallelExecutor, SerialExecutor
from repro.gpu.device import Device
from repro.serve import batch as B
from repro.serve.demo import DEMO_N

from serve_helpers import make_args

KERNELS = ("axpy", "square", "scale_sum")

ENGINES = ["fast", "jit"]
EXECUTORS = [
    pytest.param(lambda: SerialExecutor(), id="serial"),
    pytest.param(lambda: ParallelExecutor(workers=3, processes=False),
                 id="parallel"),
]

#: jit telemetry is launch-scoped and omitted from batched counters.
_TELEMETRY = ("engine",)


def _strip_telemetry(extra: dict) -> dict:
    return {k: v for k, v in extra.items()
            if k not in _TELEMETRY and not k.startswith("jit_")}


def _solo(catalog, kernel, args, num_teams):
    """Ground truth: the request run alone on a fresh device."""
    dev = Device()
    bufs = {n: dev.from_array(n, v.copy()) for n, v in args.items()}
    res = omp.launch(dev, catalog.get(kernel), num_teams=num_teams,
                     team_size=64, args=bufs)
    return {n: bufs[n].to_numpy() for n in args}, res.counters


def _batch(catalog, specs, *, engine=None, executor=None, tag="b"):
    dev = Device()
    prepared = [
        B.prepare(dev, catalog, k, a, num_teams=nt, team_size=64,
                  tag=f"{tag}{i}")
        for i, (k, a, nt) in enumerate(specs)
    ]
    try:
        return B.run_batch(dev, prepared, engine=engine, executor=executor)
    finally:
        for p in prepared:
            B.release(dev, p)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("make_executor", EXECUTORS)
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_batch_bit_identical_to_solo(catalog, engine, make_executor, data):
    n = data.draw(st.integers(1, 4), label="batch size")
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1),
                                          label="seed"))
    specs = []
    for _ in range(n):
        kernel = data.draw(st.sampled_from(KERNELS))
        num_teams = data.draw(st.integers(1, 3))
        specs.append((kernel, make_args(kernel, rng), num_teams))

    import os
    prev = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = engine
    try:
        outs = _batch(catalog, specs, engine=engine,
                      executor=make_executor())
        for (kernel, args, num_teams), out in zip(specs, outs):
            assert out.ok
            mem, kc = _solo(catalog, kernel, args, num_teams)
            for name in args:
                assert np.array_equal(mem[name], out.outputs[name]), (
                    kernel, name)
            assert kc.cycles == out.counters.cycles
            assert list(kc.blocks) == list(out.counters.blocks)
            assert (_strip_telemetry(kc.extra)
                    == _strip_telemetry(out.counters.extra))
    finally:
        if prev is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prev


@pytest.mark.parametrize("make_executor", EXECUTORS)
def test_per_request_error_demux(catalog, make_executor):
    """A faulting request errors exactly as it would solo; its batchmates
    complete untouched."""
    bad = omp.compile(
        omp.target(omp.teams_distribute_parallel_for(
            DEMO_N, body=_oob_body)),
        ("x", "y"), name="oob")
    cat2 = type(catalog)()
    cat2.register("axpy", catalog.get("axpy"))
    cat2.register("oob", bad)

    rng = np.random.default_rng(11)
    a0 = make_args("axpy", rng)
    a1 = {"x": rng.standard_normal(DEMO_N), "y": rng.standard_normal(DEMO_N)}
    a2 = make_args("axpy", rng)
    specs = [("axpy", a0, 2), ("oob", a1, 2), ("axpy", a2, 1)]

    outs = _batch(cat2, specs, executor=make_executor())
    assert outs[0].ok and outs[2].ok
    assert outs[1].error is not None
    with pytest.raises(MemoryFault):
        outs[1].raise_for_error()

    # The good requests still match their solo ground truth exactly.
    for (kernel, args, nt), out in ((specs[0], outs[0]), (specs[2], outs[2])):
        mem, kc = _solo(cat2, kernel, args, nt)
        for name in args:
            assert np.array_equal(mem[name], out.outputs[name])
        assert kc.cycles == out.counters.cycles

    # And the failing one fails identically solo.
    dev = Device()
    bufs = {n: dev.from_array(n, v.copy()) for n, v in a1.items()}
    with pytest.raises(MemoryFault):
        omp.launch(dev, bad, num_teams=2, team_size=64, args=bufs)


def _oob_body(tc, ivs, view):
    (i,) = ivs
    x = yield from tc.load(view["x"], i)
    # Last iteration stores past the end of y: deterministic fault.
    yield from tc.store(view["y"], i + (1 if i == DEMO_N - 1 else 0), x)


def test_cross_block_atomics_survive_batching(catalog):
    """scale_sum's cross-block atomic forces the stale-read fallback in
    the parallel engine — results must still be bit-identical."""
    rng = np.random.default_rng(23)
    specs = [("scale_sum", make_args("scale_sum", rng), 3),
             ("axpy", make_args("axpy", rng), 2)]
    serial = _batch(catalog, specs, executor=SerialExecutor())
    par = _batch(catalog, specs,
                 executor=ParallelExecutor(workers=2, processes=False),
                 tag="p")
    for o1, o2 in zip(serial, par):
        assert o1.ok and o2.ok
        for name in o1.outputs:
            assert np.array_equal(o1.outputs[name], o2.outputs[name])
        assert o1.counters.extra == o2.counters.extra


def test_incompatible_geometry_rejected(catalog):
    """run_batch refuses mixed block shapes (the batcher's invariant)."""
    rng = np.random.default_rng(5)
    dev = Device()
    p0 = B.prepare(dev, catalog, "axpy", make_args("axpy", rng),
                   num_teams=1, team_size=64, tag="g0")
    p1 = B.prepare(dev, catalog, "axpy", make_args("axpy", rng),
                   num_teams=1, team_size=32, tag="g1")
    try:
        assert not B.compatible(p0, p1)
        with pytest.raises(Exception):
            B.run_batch(dev, [p0, p1])
    finally:
        B.release(dev, p0)
        B.release(dev, p1)
