"""LaunchService: concurrency, ordering, backpressure, fault legs, TCP.

The headline assertions match the subsystem's acceptance bar: the
service absorbs hundreds of concurrent in-flight requests with
verified-correct (bit-identical-to-solo) responses, same-stream
requests complete in submission order, admission rejects surface as
typed :class:`Backpressure` rather than unbounded queueing, and a
fault-injected warm pool (``worker.crash``) still returns correct
results for every request.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.faults import coerce_faults
from repro.gpu.device import Device
from repro.serve import Backpressure, FairScheduler, LaunchService, PoolLease
from repro.serve.demo import REFERENCE
from repro.serve.lease import PoolLease as _PoolLease  # noqa: F401 (re-export)
from repro.serve.loadgen import drive_service, drive_tcp
from repro.serve.server import LaunchRequest
from repro.exec.pool import fork_available

from serve_helpers import make_args

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


def _service(**kw):
    kw.setdefault("scheduler", FairScheduler(max_queue=kw.pop("max_queue", 4096)))
    return LaunchService(Device(), kw.pop("catalog"), **kw)


def _request(kernel, args, *, num_teams=2, tenant="default", stream=None):
    return LaunchRequest(kernel=kernel,
                         args={k: v.copy() for k, v in args.items()},
                         num_teams=num_teams, team_size=64,
                         tenant=tenant, stream=stream)


class TestConcurrency:
    def test_500_concurrent_inflight_verified(self, catalog):
        """500 concurrent clients, every response verified against the
        NumPy oracle, zero errors, batching actually engaged."""

        async def main():
            service = _service(catalog=catalog, max_inflight=4096,
                               max_batch=32)
            async with service:
                metrics = await drive_service(
                    service, clients=500, requests_per_client=1, seed=7)
            return metrics, dict(service.stats)

        metrics, stats = asyncio.run(main())
        assert metrics["errors"] == 0
        assert metrics["launches"] == 500
        assert stats["max_batch_size"] > 1, "batching never engaged"
        assert stats["batched_requests"] == 500

    def test_responses_bit_identical_to_solo(self, catalog):
        """Responses must match a solo launch exactly, not just the
        oracle to tolerance (the batching bit-identity contract,
        end-to-end through the service)."""
        from repro import omp

        rng = np.random.default_rng(3)
        specs = [(k, make_args(k, rng), 1 + i % 3) for i, k in
                 enumerate(("axpy", "square", "scale_sum", "axpy"))]

        async def main():
            service = _service(catalog=catalog)
            async with service:
                return await asyncio.gather(*(
                    service.submit(_request(k, a, num_teams=nt))
                    for k, a, nt in specs))

        outcomes = asyncio.run(main())
        for (kernel, args, nt), out in zip(specs, outcomes):
            assert out.error is None
            dev = Device()
            bufs = {n: dev.from_array(n, v.copy()) for n, v in args.items()}
            omp.launch(dev, catalog.get(kernel), num_teams=nt,
                       team_size=64, args=bufs)
            for name in args:
                assert np.array_equal(bufs[name].to_numpy(),
                                      out.outputs[name]), (kernel, name)


class TestStreamOrdering:
    def test_same_stream_completes_in_submission_order(self, catalog):
        rng = np.random.default_rng(9)
        completion = []

        async def main():
            service = _service(catalog=catalog, max_batch=8)

            async def one(i):
                args = make_args("axpy", rng)
                out = await service.submit(
                    _request("axpy", args, num_teams=1, stream="s0"))
                completion.append(i)
                assert out.error is None

            async with service:
                await asyncio.gather(*(one(i) for i in range(12)))

        asyncio.run(main())
        assert completion == list(range(12))

    def test_same_stream_never_shares_a_batch(self, catalog):
        rng = np.random.default_rng(10)

        async def main():
            service = _service(catalog=catalog, max_batch=32)
            async with service:
                await asyncio.gather(*(
                    service.submit(_request(
                        "axpy", make_args("axpy", rng),
                        num_teams=1, stream="solo-stream"))
                    for _ in range(6)))
            return dict(service.stats)

        stats = asyncio.run(main())
        # Six requests on one stream -> six single-request batches.
        assert stats["batches"] == 6
        assert stats["max_batch_size"] == 1

    def test_independent_streams_do_batch(self, catalog):
        rng = np.random.default_rng(11)

        async def main():
            service = _service(catalog=catalog, max_batch=32,
                               batch_window=0.01)
            async with service:
                await asyncio.gather(*(
                    service.submit(_request(
                        "axpy", make_args("axpy", rng),
                        num_teams=1, stream=f"s{i}"))
                    for i in range(8)))
            return dict(service.stats)

        stats = asyncio.run(main())
        assert stats["max_batch_size"] > 1


class TestBackpressure:
    def test_inflight_cap_rejects_typed(self, catalog):
        async def main():
            service = _service(catalog=catalog, max_inflight=1)
            rng = np.random.default_rng(0)
            async with service:
                a = make_args("axpy", rng)
                first = asyncio.ensure_future(
                    service.submit(_request("axpy", a)))
                await asyncio.sleep(0)  # let it register as in flight
                with pytest.raises(Backpressure) as exc:
                    await service.submit(_request("axpy", a))
                await first
                return exc.value

        bp = asyncio.run(main())
        assert bp.reason == "inflight_limit"
        assert bp.retry_after > 0

    def test_queue_full_surfaces_and_retries_succeed(self, catalog):
        async def main():
            service = _service(catalog=catalog, max_queue=2,
                               max_inflight=4096)
            async with service:
                return await drive_service(
                    service, clients=16, requests_per_client=2, seed=1)

        metrics = asyncio.run(main())
        assert metrics["errors"] == 0  # every reject eventually retried in
        assert metrics["rejects"] > 0  # ...but rejects did happen
        assert metrics["launches"] == 32


class TestFaultLegs:
    @needs_fork
    def test_worker_crash_leg_returns_correct_results(self, catalog):
        """Warm pool with injected worker crashes: every response still
        verified correct, deaths actually happened, pool stayed warm."""

        async def main():
            faults = coerce_faults("42:worker.crash=0.3")
            lease = PoolLease(catalog, Device().params, workers=2,
                              faults=faults)
            service = _service(catalog=catalog, lease=lease)
            try:
                async with service:
                    metrics = await drive_service(
                        service, clients=8, requests_per_client=3, seed=4)
            finally:
                stats = dict(lease.stats)
                lease.close()
            return metrics, stats

        metrics, stats = asyncio.run(main())
        assert metrics["errors"] == 0
        assert metrics["launches"] == 24
        assert stats["worker_deaths"] >= 1
        assert stats["warm_dispatches"] >= 2

    def test_serve_reject_injection_is_retried_through(self, catalog):
        async def main():
            faults = coerce_faults("17:serve.reject=0.3")
            service = _service(
                catalog=catalog,
                scheduler=FairScheduler(max_queue=4096, faults=faults))
            async with service:
                metrics = await drive_service(
                    service, clients=8, requests_per_client=2, seed=2)
            return metrics, dict(service.scheduler.rejects)

        metrics, rejects = asyncio.run(main())
        assert metrics["errors"] == 0
        assert rejects.get("injected", 0) >= 1
        assert metrics["rejects"] >= rejects["injected"]


class TestWarmPoolService:
    @needs_fork
    def test_no_fork_per_launch(self, catalog):
        """The pool's workers persist across every batch the service
        dispatches — the whole point of the warm pool."""

        async def main():
            lease = PoolLease(catalog, Device().params, workers=2)
            service = _service(catalog=catalog, lease=lease)
            try:
                async with service:
                    await drive_service(service, clients=4,
                                        requests_per_client=2, seed=6)
                    pids_a = lease.pids()
                    await drive_service(service, clients=4,
                                        requests_per_client=2, seed=8)
                    pids_b = lease.pids()
                stats = dict(lease.stats)
            finally:
                lease.close()
            return pids_a, pids_b, stats

        pids_a, pids_b, stats = asyncio.run(main())
        assert pids_a == pids_b
        assert stats["worker_respawns"] == 0
        assert stats["warm_dispatches"] >= 2


class TestTcp:
    def test_tcp_roundtrip_with_ops(self, catalog):
        async def main():
            service = _service(catalog=catalog)
            server = await service.serve_tcp("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                metrics = await drive_tcp(host, port, clients=4,
                                          requests_per_client=2, seed=3)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"op": "kernels"}\n')
                await writer.drain()
                kernels = json.loads(await reader.readline())
                writer.write(b'{"op": "stats"}\n')
                await writer.drain()
                stats = json.loads(await reader.readline())
                writer.write(b'not json\n')
                await writer.drain()
                bad = json.loads(await reader.readline())
                writer.write(b'{"kernel": "nope", "num_teams": 1, '
                             b'"team_size": 64}\n')
                await writer.drain()
                missing = json.loads(await reader.readline())
                writer.close()
            finally:
                await service.stop()
            return metrics, kernels, stats, bad, missing

        metrics, kernels, stats, bad, missing = asyncio.run(main())
        assert metrics["errors"] == 0
        assert metrics["launches"] == 8
        assert set(kernels["kernels"]) == {"axpy", "square", "scale_sum"}
        assert stats["ok"] and "stats" in stats
        assert not bad["ok"]
        assert not missing["ok"]
