"""Request journal: WAL format, torn tails, dedup, crash recovery.

The exactly-once contract for acknowledged requests rests on replayable
``done`` records: every edge here — a torn final line, a duplicate key
resubmitted after its ack, a replay on a fresh device whose original
buffers are long gone — must resolve to one execution and bit-identical
outputs.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.gpu.device import Device
from repro.serve import FairScheduler, LaunchService, RequestJournal
from repro.serve.journal import pack_array, unpack_array
from repro.serve.demo import REFERENCE
from repro.serve.server import LaunchRequest

from serve_helpers import make_args


def _service(catalog, **kw):
    kw.setdefault("scheduler", FairScheduler(max_queue=4096))
    return LaunchService(Device(), catalog, **kw)


def _request(kernel, args, *, key=None, num_teams=2, **kw):
    return LaunchRequest(kernel=kernel,
                         args={k: v.copy() for k, v in args.items()},
                         num_teams=num_teams, team_size=64, key=key, **kw)


class TestWalFormat:
    def test_roundtrip_replay(self, tmp_path):
        path = os.path.join(tmp_path, "wal")
        with RequestJournal(path, fsync=False) as journal:
            journal.append_admit("k1", {"kernel": "axpy"})
            journal.append_admit("k2", {"kernel": "square"})
            journal.append_done("k1", {"outputs": {"y": [1.0]},
                                       "cycles": 9.0})
            journal.commit()
        state = RequestJournal.replay(path)
        assert state.records == 3
        assert state.torn_records == 0
        assert set(state.admitted) == {"k1", "k2"}
        assert set(state.done) == {"k1"}
        assert state.unfinished() == {"k2": {"kernel": "square"}}

    def test_array_wire_roundtrip_is_bit_exact(self):
        arr = np.random.default_rng(0).standard_normal(192)
        packed = pack_array(arr)
        assert json.dumps(packed)  # wire form must be JSON-encodable
        assert unpack_array(packed).tobytes() == arr.tobytes()
        # Plain lists (legacy records, hand-written fixtures) still load.
        assert unpack_array(arr.tolist()).tobytes() == arr.tobytes()

    def test_torn_final_record_is_skipped(self, tmp_path):
        path = os.path.join(tmp_path, "wal")
        with RequestJournal(path, fsync=False) as journal:
            journal.append_admit("k1", {"kernel": "axpy"})
            journal.append_done("k1", {"outputs": {}, "cycles": 1.0})
            journal.append_admit("k2", {"kernel": "square"})
            journal.commit()
        # Crash mid-append: shear half the final line off.
        with open(path, "rb") as fh:
            lines = fh.readlines()
        with open(path, "wb") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][: len(lines[-1]) // 2])
        state = RequestJournal.replay(path)
        assert state.torn_records == 1
        assert set(state.admitted) == {"k1"}
        assert set(state.done) == {"k1"}

    def test_crc_mismatch_is_skipped(self, tmp_path):
        path = os.path.join(tmp_path, "wal")
        with RequestJournal(path, fsync=False) as journal:
            journal.append_done("k1", {"outputs": {}, "cycles": 1.0})
            journal.commit()
        with open(path, "rb") as fh:
            line = fh.read()
        with open(path, "wb") as fh:
            fh.write(line.replace(b'"cycles":1.0', b'"cycles":2.0'))
        state = RequestJournal.replay(path)
        assert state.records == 0
        assert state.torn_records == 1

    def test_torn_write_fault_site_tears_admits_only(self, tmp_path):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec("journal.torn_write", probability=1.0),))
        path = os.path.join(tmp_path, "wal")
        with RequestJournal(path, faults=plan, fsync=False) as journal:
            journal.append_admit("k1", {"kernel": "axpy"})
            journal.append_done("k1", {"outputs": {}, "cycles": 1.0})
            journal.commit()
        state = RequestJournal.replay(path)
        # The admit was torn (unsynced append, client never acked);
        # the done record is fsync-critical and exempt by design.
        assert plan.counters.torn_writes == 1
        assert state.torn_records == 1
        assert set(state.admitted) == set()
        assert set(state.done) == {"k1"}


class TestServiceDurability:
    def test_dup_key_after_ack_replays_without_reexecution(
            self, catalog, tmp_path):
        path = os.path.join(tmp_path, "wal")

        async def main():
            journal = RequestJournal(path, fsync=False)
            service = _service(catalog, journal=journal)
            rng = np.random.default_rng(3)
            args = make_args("axpy", rng)
            async with service:
                first = await service.submit(
                    _request("axpy", args, key="dup-1"))
                second = await service.submit(
                    _request("axpy", args, key="dup-1"))
            journal.close()
            return service, first, second

        service, first, second = asyncio.run(main())
        assert first.error is None and second.error is None
        assert second.counters.extra.get("journal_replay") == 1.0
        for name, want in first.outputs.items():
            assert second.outputs[name].tobytes() == want.tobytes()
        # Exactly one execution and one durable done record.
        assert service.stats["completed"] == 1
        assert service.stats["replays"] == 1
        state = RequestJournal.replay(path)
        assert set(state.done) == {"dup-1"}
        assert state.unfinished() == {}

    def test_replay_survives_restart_with_freed_device_buffers(
            self, catalog, tmp_path):
        """The original service (and its device, and every buffer the
        launch touched) is gone; a fresh service must answer the
        resubmitted key from the journal alone, bit-identically."""
        path = os.path.join(tmp_path, "wal")
        rng = np.random.default_rng(4)
        args = make_args("square", rng)

        async def first_life():
            journal = RequestJournal(path, fsync=False)
            service = _service(catalog, journal=journal)
            async with service:
                outcome = await service.submit(
                    _request("square", args, key="restart-1"))
            journal.close()
            return {k: v.copy() for k, v in outcome.outputs.items()}

        outputs = asyncio.run(first_life())

        async def second_life():
            service = _service(catalog)
            state = service.load_journal(path, fsync=False)
            assert state.unfinished() == {}
            async with service:
                outcome = await service.submit(
                    _request("square", args, key="restart-1"))
            service.journal.close()
            return service, outcome

        service, replayed = asyncio.run(second_life())
        assert replayed.counters.extra.get("journal_replay") == 1.0
        assert service.stats["completed"] == 0  # no re-execution
        for name, want in outputs.items():
            assert replayed.outputs[name].tobytes() == want.tobytes()
        want = REFERENCE["square"](args)
        for name, arr in want.items():
            assert np.allclose(replayed.outputs[name], arr)

    def test_recover_reexecutes_admitted_but_unfinished(
            self, catalog, tmp_path):
        path = os.path.join(tmp_path, "wal")
        rng = np.random.default_rng(5)
        args = make_args("axpy", rng)
        # A crash after admission, before completion: only the admit
        # record made it to disk.
        with RequestJournal(path, fsync=False) as journal:
            journal.append_admit("lost-1", {
                "kernel": "axpy",
                "args": {k: v.tolist() for k, v in args.items()},
                "num_teams": 2,
                "team_size": 64,
                "out": ["x", "y"],
                "tenant": "default",
            })
            journal.commit()

        async def boot():
            service = _service(catalog)
            state = service.load_journal(path, fsync=False)
            assert set(state.unfinished()) == {"lost-1"}
            async with service:
                count = await service.recover(state)
            service.journal.close()
            return service, count

        service, count = asyncio.run(boot())
        assert count == 1
        assert service.stats["completed"] == 1
        state = RequestJournal.replay(path)
        assert "lost-1" in state.done
        got = unpack_array(state.done["lost-1"]["outputs"]["y"])
        want = REFERENCE["axpy"](args)["y"]
        assert np.allclose(got, want)

    def test_resume_fallback_without_journal(self, catalog):
        """Keyed submits on a journal-less service still dedup in
        memory and never crash on the missing journal."""

        async def main():
            service = _service(catalog)
            rng = np.random.default_rng(6)
            args = make_args("axpy", rng)
            async with service:
                first = await service.submit(
                    _request("axpy", args, key="nojournal-1"))
                second = await service.submit(
                    _request("axpy", args, key="nojournal-1"))
            return service, first, second

        service, first, second = asyncio.run(main())
        assert first.error is None
        assert second.counters.extra.get("journal_replay") == 1.0
        assert service.stats["completed"] == 1
