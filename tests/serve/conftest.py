"""Shared fixtures for the serve-tier test suite."""

from __future__ import annotations

import pytest

from repro.serve.demo import demo_catalog


@pytest.fixture(scope="session")
def catalog():
    """One compiled demo catalog for the whole session (compile once)."""
    return demo_catalog()
