"""Warm WorkerPool: persistent reuse, health-checked respawn, teardown.

These tests pin the properties the serve tier depends on: the same
forked workers service many ``map`` calls (no fork-per-launch), a
worker killed mid-stream is respawned and its work retried without a
wrong answer, and every pool is torn down — explicitly, via ``with``,
or by the atexit sweep — so warm children never outlive the
interpreter.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.exec.pool import (
    INJECTED_CRASH_EXIT,
    RetryPolicy,
    WorkerPool,
    _LIVE_POOLS,
    _sweep_pools,
    fork_available,
)
from repro.faults import coerce_faults
from repro.faults.plan import FaultPlan, FaultSpec

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


def _double(payload):
    return payload * 2


def _pid_of(payload):
    return os.getpid()


@needs_fork
class TestWarmReuse:
    def test_same_workers_across_maps(self):
        with WorkerPool(_pid_of, workers=2) as pool:
            first = set(r for s, r in pool.map(range(8)) if s == "ok")
            pids_a = pool.pids()
            second = set(r for s, r in pool.map(range(8)) if s == "ok")
            pids_b = pool.pids()
        assert pids_a == pids_b, "workers were respawned between maps"
        assert first == second == set(pids_a)
        assert pool.stats["worker_respawns"] == 0
        assert pool.stats["warm_dispatches"] == 2

    def test_results_ordered_and_correct(self):
        with WorkerPool(_double, workers=3) as pool:
            for _ in range(3):
                out = pool.map(list(range(20)))
                assert [r for s, r in out] == [i * 2 for i in range(20)]
                assert all(s == "ok" for s, _ in out)

    def test_dead_worker_respawned_by_ensure(self):
        with WorkerPool(_pid_of, workers=2) as pool:
            pool.map(range(4))
            victim = pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    os.waitpid(victim, os.WNOHANG)
                except ChildProcessError:
                    break
                time.sleep(0.01)
            out = pool.map(range(4))
            assert all(s == "ok" for s, _ in out)
            assert victim not in pool.pids()
            assert pool.stats["worker_respawns"] >= 1


@needs_fork
class TestCrashRecovery:
    def test_injected_crash_recovers_with_correct_results(self):
        plan = coerce_faults("13:worker.crash=0.5")
        stats = {}
        with WorkerPool(_double, workers=2, faults=plan) as pool:
            out = pool.map(list(range(16)), stats=stats)
        assert [r for s, r in out] == [i * 2 for i in range(16)]
        assert stats["worker_deaths"] >= 1
        # Respawns are a pool-lifetime event (ensure()), so they land on
        # the cumulative stats, not the per-call sink.
        assert pool.stats["worker_respawns"] >= 1

    def test_exhausted_retries_degrade_in_process(self):
        # attempts=99 defeats every retry round (a spec's default
        # attempts=1 makes faults transient: first retry succeeds).
        plan = FaultPlan(13, (
            FaultSpec("worker.crash", probability=1.0, attempts=99),))
        with WorkerPool(_double, workers=2, faults=plan,
                        retry=RetryPolicy(max_retries=1)) as pool:
            out = pool.map(list(range(6)))
        assert [r for s, r in out] == [i * 2 for i in range(6)]
        assert pool.stats["degraded_chunks"] >= 1

    def test_crash_exit_code_is_distinct(self):
        # The sentinel must not collide with common exit codes.
        assert INJECTED_CRASH_EXIT not in (0, 1, 2)


@needs_fork
class TestTeardown:
    def test_close_reaps_children(self):
        pool = WorkerPool(_double, workers=2)
        pool.map(range(4))
        pids = [p for p in pool.pids() if p is not None]
        assert pids
        pool.close()
        assert pool.closed
        for pid in pids:
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.01)
            else:
                pytest.fail(f"worker {pid} still alive after close()")

    def test_close_is_idempotent_and_blocks_reuse(self):
        pool = WorkerPool(_double, workers=1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.map([1])

    def test_atexit_sweep_closes_live_pools(self):
        pool = WorkerPool(_double, workers=1)
        pool.map([1])
        assert pool in _LIVE_POOLS
        _sweep_pools()
        assert pool.closed
        assert pool not in _LIVE_POOLS

    def test_context_manager_closes(self):
        with WorkerPool(_double, workers=1) as pool:
            pool.map([3])
        assert pool.closed


class TestInProcessFallback:
    def test_threads_mode_still_correct(self):
        """processes=False (no fork) runs the same contract in-process."""
        with WorkerPool(_double, workers=2, processes=False) as pool:
            out = pool.map(list(range(10)))
            assert [r for s, r in out] == [i * 2 for i in range(10)]
            out2 = pool.map(list(range(5)))
            assert [r for s, r in out2] == [i * 2 for i in range(5)]
