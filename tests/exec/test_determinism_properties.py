"""Property tests: parallel results are invariant to how work is sharded.

The engine runs every block against the pre-launch snapshot, so the
merged outcome may depend only on the *plan* (grid, kernel, schedule
seed) — never on worker count, shard boundaries, or transport.  A seeded
hypothesis sweep checks that directly: one serial baseline per drawn
configuration, then several (workers, shard_size) decompositions that
must all reproduce it bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import ParallelExecutor, SerialExecutor
from repro.gpu.device import Device
from repro.sanitizer.schedule import ShuffleSchedule


def _mixed_kernel(n_cells):
    """A kernel touching every merge path: plain stores, block-exclusive
    atomics, shared memory with warp sync, divergent compute."""

    def kernel(tc, out, acc):
        i = tc.global_tid
        v = float((i * 7 + 3) % 13)
        if i < n_cells:
            yield from tc.store(out, i, v)
        if tc.tid % 3 == 0:
            yield from tc.compute("fma")
        yield from tc.atomic_add(acc, tc.block_id, v)
        yield from tc.syncwarp()
        if i + 1 < n_cells and tc.tid == 0:
            w = yield from tc.load(out, i)
            yield from tc.store(out, i, w + 0.5)

    return kernel


def _run(executor, num_blocks, threads, seed):
    dev = Device(executor=executor)
    n_cells = num_blocks * threads
    out = dev.alloc("out", n_cells, np.float64)
    acc = dev.alloc("acc", num_blocks, np.float64)
    policy = ShuffleSchedule(seed) if seed else None
    kc = dev.launch(
        _mixed_kernel(n_cells),
        num_blocks=num_blocks,
        threads_per_block=threads,
        args=(out, acc),
        schedule_policy=policy,
    )
    return dev.to_numpy(out), dev.to_numpy(acc), kc


@settings(max_examples=20, deadline=None)
@given(
    num_blocks=st.integers(min_value=1, max_value=9),
    threads=st.integers(min_value=1, max_value=48),
    workers=st.integers(min_value=1, max_value=4),
    shard_size=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    seed=st.integers(min_value=0, max_value=3),
)
def test_invariant_to_workers_and_shards(num_blocks, threads, workers,
                                         shard_size, seed):
    out_s, acc_s, kc_s = _run(SerialExecutor(), num_blocks, threads, seed)
    out_p, acc_p, kc_p = _run(
        ParallelExecutor(workers=workers, processes=False, shard_size=shard_size),
        num_blocks, threads, seed,
    )
    assert np.array_equal(out_s, out_p)
    assert np.array_equal(acc_s, acc_p)
    assert kc_s.identical(kc_p)


def test_all_decompositions_agree_exactly():
    """Exhaustive small-grid sweep: every (workers, shard) decomposition —
    including forked transport — yields one identical outcome."""
    baseline = _run(SerialExecutor(), 6, 32, seed=2)
    decompositions = [
        ParallelExecutor(workers=1, processes=False),
        ParallelExecutor(workers=2, processes=False),
        ParallelExecutor(workers=3, processes=False, shard_size=1),
        ParallelExecutor(workers=2, processes=False, shard_size=5),
        ParallelExecutor(workers=2, processes=True),
        ParallelExecutor(workers=3, processes=True, shard_size=2),
    ]
    for executor in decompositions:
        out, acc, kc = _run(executor, 6, 32, seed=2)
        assert np.array_equal(baseline[0], out), repr(executor)
        assert np.array_equal(baseline[1], acc), repr(executor)
        assert baseline[2].identical(kc), repr(executor)


@settings(max_examples=10, deadline=None)
@given(
    num_blocks=st.integers(min_value=2, max_value=8),
    workers=st.integers(min_value=2, max_value=4),
)
def test_schedule_policy_decomposes_per_block(num_blocks, workers):
    """A ShuffleSchedule must give each block the same permutations no
    matter which worker runs it (the policy is stateless by key)."""

    def kernel(tc, out, mark):
        yield from tc.store(out, tc.global_tid, float(tc.tid))
        yield from tc.syncwarp()
        if tc.tid == 0:
            yield from tc.store(mark, tc.block_id, -1.0)

    def run(executor):
        dev = Device(executor=executor)
        out = dev.alloc("out", num_blocks * 64, np.float64)
        mark = dev.alloc("mark", num_blocks, np.float64)
        kc = dev.launch(kernel, num_blocks=num_blocks, threads_per_block=64,
                        args=(out, mark), schedule_policy=ShuffleSchedule(99))
        return np.concatenate([dev.to_numpy(out), dev.to_numpy(mark)]), kc

    out_s, kc_s = run(SerialExecutor())
    out_p, kc_p = run(ParallelExecutor(workers=workers, processes=False))
    assert np.array_equal(out_s, out_p)
    assert kc_s.identical(kc_p)


def test_stateless_shuffle_schedule_is_call_order_independent():
    """Unit check of the statelessness the engine relies on: permutations
    depend only on (seed, block, round, warp), not on query order."""
    a = ShuffleSchedule(5)
    b = ShuffleSchedule(5)
    # Query b in a scrambled order; answers must match a's.
    keys = [(blk, rnd) for blk in range(4) for rnd in range(3)]
    want = {k: list(a.warp_order(k[0], k[1], 8)) for k in keys}
    for k in reversed(keys):
        assert list(b.warp_order(k[0], k[1], 8)) == want[k]
    assert list(a.commit_order(1, 2, 3, 6)) == list(b.commit_order(1, 2, 3, 6))
