"""Failed launches must leave no partial coordinator state behind.

``Device.last_launch`` and the process-wide sanitizer session are updated
by the *coordinator* only after a launch fully completes and merges; an
executor that raises (validation error, kernel fault, deadlock, race)
leaves both exactly as they were — under every executor.  Also covers
the executor-selection plumbing (env spec parsing, precedence).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitizer
from repro.errors import DataRaceError, DeadlockError, LaunchError, MemoryFault
from repro.exec import (
    ParallelExecutor,
    SerialExecutor,
    coerce_executor,
    default_executor,
    set_default_executor,
)
from repro.gpu.device import Device

EXECUTORS = [
    pytest.param(SerialExecutor(), id="serial"),
    pytest.param(ParallelExecutor(workers=2, processes=False), id="inproc"),
    pytest.param(ParallelExecutor(workers=2, processes=True), id="fork"),
]


def _racy(tc, a):
    yield from tc.store(a, 0, float(tc.tid))


def _deadlocked(tc, a):
    if tc.tid < 16:
        yield from tc.syncthreads(bar_id=0)
    else:
        yield from tc.syncthreads(bar_id=1)
    yield from tc.store(a, tc.tid, 1.0)


def _faulting(tc, a):
    yield from tc.store(a, 10_000, 1.0)


def _noop(tc, a):
    if False:
        yield


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize(
    "kernel, kwargs, exc",
    [
        pytest.param(_racy, {"sanitize": "raise"}, DataRaceError, id="race"),
        pytest.param(_deadlocked, {}, DeadlockError, id="deadlock"),
        pytest.param(_faulting, {}, MemoryFault, id="fault"),
    ],
)
def test_failed_launch_leaves_no_partial_state(executor, kernel, kwargs, exc):
    dev = Device(executor=executor)
    a = dev.alloc("a", 32, np.float64)

    ok = dev.launch(_noop, num_blocks=1, threads_per_block=1, args=(a,))
    assert dev.last_launch is ok

    with pytest.raises(exc):
        dev.launch(kernel, num_blocks=2, threads_per_block=32, args=(a,),
                   **kwargs)
    assert dev.last_launch is ok, "failed launch must not update last_launch"


@pytest.mark.parametrize("executor", EXECUTORS)
def test_failed_launch_adds_no_session_report(executor):
    dev = Device(executor=executor)
    a = dev.alloc("a", 32, np.float64)
    with sanitizer.session() as sess:
        dev.launch(_noop, num_blocks=1, threads_per_block=1, args=(a,))
        n_ok = len(sess.reports)
        assert n_ok == 1
        with pytest.raises(LaunchError):
            dev.launch(_faulting, num_blocks=0, threads_per_block=32, args=(a,))
        assert len(sess.reports) == n_ok, "rejected launch must not report"


@pytest.mark.parametrize("executor", EXECUTORS)
def test_invalid_geometry_rejected_before_execution(executor):
    dev = Device(executor=executor)
    before = dev.last_launch
    with pytest.raises(LaunchError):
        dev.launch(_noop, num_blocks=1, threads_per_block=4096, args=(None,))
    assert dev.last_launch is before


def test_report_mode_deadlock_truncates_identically():
    """In report mode a deadlock truncates the launch rather than raising;
    the parallel merge must reproduce the serial truncation point."""

    def kernel(tc, a):
        if tc.block_id == 1:
            if tc.tid < 16:
                yield from tc.syncthreads(bar_id=0)
            else:
                yield from tc.syncthreads(bar_id=1)
        yield from tc.store(a, tc.global_tid, 1.0)

    def run(executor):
        dev = Device(executor=executor)
        a = dev.alloc("a", 128, np.float64)
        kc = dev.launch(kernel, num_blocks=4, threads_per_block=32,
                        args=(a,), sanitize="report")
        return dev.to_numpy(a), kc

    a_s, kc_s = run(SerialExecutor())
    a_p, kc_p = run(ParallelExecutor(workers=3, processes=False))
    assert np.array_equal(a_s, a_p)
    assert kc_s.identical(kc_p)
    assert kc_s.sanitizer.categories() == kc_p.sanitizer.categories()
    assert len(kc_p.blocks) == 2, "blocks past the deadlock must not land"


# ---------------------------------------------------------------------------
# Executor selection plumbing
# ---------------------------------------------------------------------------


def test_coerce_executor_specs():
    assert isinstance(coerce_executor(""), SerialExecutor)
    assert isinstance(coerce_executor("serial"), SerialExecutor)
    par = coerce_executor("parallel:3")
    assert isinstance(par, ParallelExecutor)
    assert par.workers == 3 and par.processes is False
    frk = coerce_executor("fork:2")
    assert frk.workers == 2 and frk.processes is True
    assert coerce_executor("parallel").workers is None
    with pytest.raises(ValueError):
        coerce_executor("threads")
    with pytest.raises(ValueError):
        coerce_executor("parallel:zero")


def test_env_spec_controls_default(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "parallel:2")
    ex = default_executor()
    assert isinstance(ex, ParallelExecutor) and ex.workers == 2
    monkeypatch.setenv("REPRO_EXECUTOR", "serial")
    assert isinstance(default_executor(), SerialExecutor)


def test_set_default_executor_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "serial")
    override = ParallelExecutor(workers=2, processes=False)
    set_default_executor(override)
    try:
        assert default_executor() is override
    finally:
        set_default_executor(None)
    assert isinstance(default_executor(), SerialExecutor)


def test_launch_argument_beats_device_executor():
    """Per-launch executor overrides the device's; tracers force serial."""
    calls = []

    class Probe(ParallelExecutor):
        def execute(self, device, plan):
            calls.append("probe")
            return super().execute(device, plan)

    dev = Device(executor=SerialExecutor())
    a = dev.alloc("a", 32, np.float64)

    def kernel(tc, a):
        yield from tc.store(a, tc.tid, 1.0)

    dev.launch(kernel, 1, 32, args=(a,),
               executor=Probe(workers=2, processes=False))
    assert calls == ["probe"]

    # A tracer must silently route any parallel executor to serial
    # in-process execution (closures observe live generators).
    seen = []
    dev2 = Device(executor=ParallelExecutor(workers=2, processes=True))
    b = dev2.alloc("b", 32, np.float64)
    dev2.launch(kernel, 2, 32, args=(b,),
                tracer=lambda *ev: seen.append(ev))
    assert seen, "tracer saw no events"
