"""Seeded jitter on retry backoff, and the serve-layer fault sites.

Retry storms re-collide when every failed chunk sleeps the same capped
exponential; the fix is jitter that is *deterministic* (same plan seed →
same campaign timing) yet de-synchronized across chunks (distinct salts
draw distinct factors).
"""

from __future__ import annotations

import pytest

from repro.exec.pool import RetryPolicy, retry_delay
from repro.faults import FaultPlan, FaultSpec, coerce_faults
from repro.faults.plan import SITES

POLICY = RetryPolicy(backoff=0.02, backoff_cap=0.5)


class TestRetryJitter:
    def test_deterministic_for_same_inputs(self):
        plan = FaultPlan(seed=7)
        a = retry_delay(POLICY, 1, faults=plan, salt="chunk-3")
        b = retry_delay(POLICY, 1, faults=plan, salt="chunk-3")
        assert a == b

    def test_within_half_to_threehalves_of_base(self):
        for attempt in range(6):
            base = min(POLICY.backoff_cap, POLICY.backoff * 2 ** attempt)
            for salt in ("a", "b", 17):
                d = retry_delay(POLICY, attempt, salt=salt)
                assert 0.5 * base <= d < 1.5 * base

    def test_varies_with_seed_salt_and_attempt(self):
        base = retry_delay(POLICY, 2, faults=FaultPlan(seed=1), salt="s")
        assert retry_delay(POLICY, 2, faults=FaultPlan(seed=2),
                           salt="s") != base
        assert retry_delay(POLICY, 2, faults=FaultPlan(seed=1),
                           salt="t") != base
        assert retry_delay(POLICY, 3, faults=FaultPlan(seed=1),
                           salt="s") != base

    def test_no_plan_is_still_jittered_and_reproducible(self):
        d = retry_delay(POLICY, 0, salt="x")
        assert d == retry_delay(POLICY, 0, salt="x")
        base = POLICY.backoff
        assert 0.5 * base <= d < 1.5 * base

    def test_zero_backoff_stays_zero(self):
        assert retry_delay(RetryPolicy(backoff=0.0), 3, salt="x") == 0.0


class TestServeFaultSites:
    SERVE_SITES = ("serve.conn_drop", "serve.dispatch_stall",
                   "journal.torn_write", "lease.corrupt")

    def test_sites_are_registered(self):
        for site in self.SERVE_SITES:
            assert site in SITES
            # Registration is what validation enforces.
            FaultSpec(site, probability=0.5)

    def test_counters_roll_up_into_injected(self):
        plan = FaultPlan(seed=3)
        plan.record("serve.conn_drop", {"tenant": "t", "seq": "k"},
                    recovered=True)
        plan.record("serve.dispatch_stall", {"batch": 0}, recovered=True)
        plan.record("journal.torn_write", {"index": 0}, recovered=True)
        plan.record("lease.corrupt", {"batch": 0, "payload": 0},
                    recovered=True)
        c = plan.counters
        assert c.conn_drops == 1
        assert c.dispatch_stalls == 1
        assert c.torn_writes == 1
        assert c.lease_corruptions == 1
        assert c.injected >= 4

    def test_grammar_parses_serve_sites(self):
        plan = coerce_faults(
            "2023:serve.conn_drop=0.08,journal.torn_write=0.1")
        assert plan.seed == 2023
        sites = {spec.site for spec in plan.specs}
        assert sites == {"serve.conn_drop", "journal.torn_write"}

    def test_fires_is_deterministic_per_seed(self):
        spec = (FaultSpec("serve.conn_drop", probability=0.5),)
        a = FaultPlan(seed=9, specs=spec)
        b = FaultPlan(seed=9, specs=spec)
        coords = [{"tenant": "t", "seq": f"k{i}", "attempt": 0}
                  for i in range(64)]
        hits_a = [a.fires("serve.conn_drop", **c) is not None
                  for c in coords]
        hits_b = [b.fires("serve.conn_drop", **c) is not None
                  for c in coords]
        assert hits_a == hits_b
        assert any(hits_a) and not all(hits_a)

    def test_attempt_bound_lets_the_retry_through(self):
        # Default attempts=1: the resubmit (attempt=1) must escape the
        # spec even when attempt 0 fired — this is what guarantees a
        # conn_drop client eventually gets its ack.
        plan = FaultPlan(seed=9, specs=(
            FaultSpec("serve.conn_drop", probability=1.0),))
        assert plan.fires("serve.conn_drop", tenant="t", seq="k",
                          attempt=0) is not None
        assert plan.fires("serve.conn_drop", tenant="t", seq="k",
                          attempt=1) is None
