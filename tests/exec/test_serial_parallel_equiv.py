"""Differential harness: every kernel must be serial ≡ parallel.

Each case runs once under :class:`~repro.exec.SerialExecutor` (the ground
truth) and once per parallel engine variant, then the *entire observable
outcome* is compared bit-for-bit:

* every live global-memory buffer (plus the ``live_bytes`` accounting),
* the :class:`~repro.gpu.counters.KernelCounters` (geometry, cycles,
  per-block counters, extras) via :meth:`KernelCounters.identical`,
* the OpenMP runtime counters (merged as side-state deltas),
* sanitizer finding sets, for the seeded-bug corpus.

The cases deliberately span the engine's interesting paths: plain
store/load kernels (straight merge), cross-block atomics whose results
feed control flow (read-validation → serial fallback), sanitized
launches (per-block monitor merge and the cross-block-sharing fallback),
and erroring kernels (deterministic cutoff + partial-state landing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MemoryFault
from repro.exec import ParallelExecutor, SerialExecutor
from repro.gpu.device import Device
from repro.kernels import ideal, laplace3d, muram_interpol, muram_transpose
from repro.kernels import sparse_matvec, su3

#: Parallel engine variants differenced against the serial ground truth.
#: ``processes=False`` is the in-process isolated engine; ``processes=True``
#: forks real workers (same snapshot/merge machinery, different transport).
VARIANTS = [
    pytest.param(lambda: ParallelExecutor(workers=3, processes=False), id="inproc3"),
    pytest.param(lambda: ParallelExecutor(workers=2, processes=False, shard_size=1),
                 id="inproc2-shard1"),
    pytest.param(lambda: ParallelExecutor(workers=2, processes=True), id="fork2"),
]


def _spmv_two_level(dev):
    data = sparse_matvec.build_data(dev, n_rows=48, n_cols=48, mean_nnz=4.0)
    res = sparse_matvec.run_two_level(dev, data, num_teams=8, team_size=32)
    assert data.check()
    return res


def _spmv_simd(dev):
    data = sparse_matvec.build_data(dev, n_rows=48, n_cols=48, mean_nnz=4.0)
    res = sparse_matvec.run_simd(dev, data, simd_len=4, num_teams=8, team_size=32)
    assert data.check()
    return res


def _spmv_dynamic(dev):
    # The dynamic schedule claims rows off a shared atomic counter, so
    # blocks branch on cross-block atomic results — the parallel engine
    # must detect the stale reads and fall back to serial re-execution.
    data = sparse_matvec.build_data(dev, n_rows=32, n_cols=32, mean_nnz=4.0)
    res = sparse_matvec.run_simd_dynamic(dev, data, simd_len=4, num_teams=4,
                                         team_size=32)
    assert data.check()
    return res


def _spmv_reduction(dev):
    data = sparse_matvec.build_data(dev, n_rows=32, n_cols=32, mean_nnz=4.0)
    res = sparse_matvec.run_simd_reduction(dev, data, simd_len=4, num_teams=4,
                                           team_size=32)
    assert data.check()
    return res


def _su3(dev):
    data = su3.build_data(dev, sites=32)
    res = su3.run_simd(dev, data, simd_len=8, num_teams=4, team_size=32)
    assert data.check()
    return res


def _ideal(dev):
    data = ideal.build_data(dev, n_rows=32)
    res = ideal.run_simd(dev, data, simd_len=8, num_teams=4, team_size=32)
    assert data.check()
    return res


def _laplace(dev):
    data = laplace3d.build_data(dev, nx=6, ny=6, nz=10)
    res = laplace3d.run(dev, data, "spmd_simd", simd_len=8, num_teams=4,
                        team_size=32)
    assert data.check()
    return res


def _transpose(dev):
    data = muram_transpose.build_data(dev, nx=6, ny=6, nz=8)
    res = muram_transpose.run(dev, data, "generic_simd", simd_len=8,
                              num_teams=4, team_size=32)
    assert data.check()
    return res


def _interpol(dev):
    data = muram_interpol.build_data(dev, nx=6, ny=6, nz=11)
    res = muram_interpol.run(dev, data, "spmd_simd", simd_len=8, num_teams=4,
                             team_size=32)
    assert data.check()
    return res


KERNELS = [
    pytest.param(_spmv_two_level, id="spmv-two-level"),
    pytest.param(_spmv_simd, id="spmv-simd"),
    pytest.param(_spmv_dynamic, id="spmv-dynamic"),
    pytest.param(_spmv_reduction, id="spmv-reduction"),
    pytest.param(_su3, id="su3"),
    pytest.param(_ideal, id="ideal"),
    pytest.param(_laplace, id="laplace3d"),
    pytest.param(_transpose, id="muram-transpose"),
    pytest.param(_interpol, id="muram-interpol"),
]


def _memory_image(dev):
    """Name → array snapshot of every live global buffer, plus accounting."""
    image = {
        buf.name: buf.to_numpy().copy() for buf in dev.gmem.allocated_since(0)
    }
    image["__live_bytes__"] = dev.gmem.live_bytes
    return image


def _assert_same_memory(serial, parallel):
    assert serial.keys() == parallel.keys()
    for name in serial:
        a, b = serial[name], parallel[name]
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b, equal_nan=True), f"buffer {name!r} differs"
        else:
            assert a == b, f"{name}: {a} != {b}"


@pytest.mark.parametrize("make_executor", VARIANTS)
@pytest.mark.parametrize("case", KERNELS)
def test_kernel_equivalence(case, make_executor):
    dev_s = Device(executor=SerialExecutor())
    res_s = case(dev_s)
    dev_p = Device(executor=make_executor())
    res_p = case(dev_p)

    _assert_same_memory(_memory_image(dev_s), _memory_image(dev_p))
    assert res_s.counters.identical(res_p.counters)
    assert res_s.cycles == res_p.cycles
    assert res_s.runtime.as_dict() == res_p.runtime.as_dict()


@pytest.mark.parametrize("make_executor", VARIANTS)
def test_corpus_equivalence(make_executor):
    """The 7 seeded-bug cases produce identical finding sets in parallel."""
    from repro.sanitizer.corpus import CASES

    # Corpus case runners accept a worker count, not an executor; exercise
    # the in-process and forked engines through that plumbing instead.
    workers = 2
    for c in CASES:
        got_s = c.run()
        got_p = c.run(workers=workers)
        assert got_s.caught, f"{c.name}: serial run missed the bug"
        assert got_p.caught, f"{c.name}: parallel run missed the bug"
        assert got_s.got == got_p.got, (
            f"{c.name}: finding categories diverged: {got_s.got} != {got_p.got}"
        )


@pytest.mark.parametrize("make_executor", VARIANTS)
def test_sanitized_clean_multiblock_report(make_executor):
    """A clean multi-block kernel: merged per-block reports match serial."""

    def kernel(tc, out):
        yield from tc.store(out, tc.global_tid, float(tc.tid))
        yield from tc.syncwarp()
        v = yield from tc.load(out, tc.global_tid)
        yield from tc.store(out, tc.global_tid, 2.0 * v)

    def run(executor):
        dev = Device(executor=executor)
        out = dev.alloc("out", 128, np.float64)
        kc = dev.launch(kernel, num_blocks=4, threads_per_block=32,
                        args=(out,), sanitize="report")
        return dev.to_numpy(out), kc

    out_s, kc_s = run(SerialExecutor())
    out_p, kc_p = run(make_executor())
    assert np.array_equal(out_s, out_p)
    assert kc_s.identical(kc_p)
    assert kc_s.sanitizer.clean and kc_p.sanitizer.clean
    assert [f.render() for f in kc_s.sanitizer.findings] == [
        f.render() for f in kc_p.sanitizer.findings
    ]
    assert kc_s.sanitizer.stats == kc_p.sanitizer.stats


@pytest.mark.parametrize("make_executor", VARIANTS)
def test_sanitized_cross_block_race_equivalence(make_executor):
    """Cross-block races need the launch-wide monitor: the engine must
    fall back so parallel runs report exactly what serial reports."""

    def kernel(tc, a):
        yield from tc.store(a, 0, float(tc.block_id))

    def run(executor):
        dev = Device(executor=executor)
        a = dev.alloc("a", 1, np.float64)
        kc = dev.launch(kernel, num_blocks=2, threads_per_block=1,
                        args=(a,), sanitize="report")
        return dev.to_numpy(a), kc

    a_s, kc_s = run(SerialExecutor())
    a_p, kc_p = run(make_executor())
    assert np.array_equal(a_s, a_p)
    assert kc_s.identical(kc_p)
    assert kc_s.sanitizer.categories() == kc_p.sanitizer.categories()
    assert "data-race" in kc_p.sanitizer.categories()


@pytest.mark.parametrize("make_executor", VARIANTS)
def test_cross_block_atomic_feedback_equivalence(make_executor):
    """Blocks branching on a shared atomic counter (dynamic work claiming)
    exercise read validation: results must still be bit-identical."""

    def kernel(tc, counter, out):
        if tc.tid == 0:
            claimed = yield from tc.atomic_add(counter, 0, 1)
            yield from tc.store(out, int(claimed), float(tc.block_id))

    def run(executor):
        dev = Device(executor=executor)
        counter = dev.alloc("counter", 1, np.int64)
        out = dev.alloc("out", 8, np.float64)
        kc = dev.launch(kernel, num_blocks=8, threads_per_block=32,
                        args=(counter, out))
        return dev.to_numpy(counter), dev.to_numpy(out), kc

    c_s, o_s, kc_s = run(SerialExecutor())
    c_p, o_p, kc_p = run(make_executor())
    assert np.array_equal(c_s, c_p)
    assert np.array_equal(o_s, o_p)
    assert kc_s.identical(kc_p)


@pytest.mark.parametrize("make_executor", VARIANTS)
def test_cross_block_atomic_accumulation_equivalence(make_executor):
    """Pure atomic reductions replay through ``apply_atomic`` exactly."""

    def kernel(tc, x, total):
        i = tc.global_tid
        v = yield from tc.load(x, i)
        yield from tc.atomic_add(total, 0, v)

    def run(executor):
        dev = Device(executor=executor)
        x = dev.from_array("x", np.arange(256, dtype=np.float64))
        total = dev.scalar("total", 0.0)
        kc = dev.launch(kernel, num_blocks=8, threads_per_block=32,
                        args=(x, total))
        return float(dev.to_numpy(total)[0]), kc

    t_s, kc_s = run(SerialExecutor())
    t_p, kc_p = run(make_executor())
    assert t_s == t_p == float(np.arange(256).sum())
    assert kc_s.identical(kc_p)


def test_cross_block_plain_conflict_flagged():
    """Unsanitized racy kernel: the merge still commits the serial
    last-writer-wins values, but flags the conflict in ``kc.extra`` —
    the one deliberate observable asymmetry of the parallel engine."""

    def kernel(tc, a):
        if tc.tid == 0:
            yield from tc.store(a, 0, float(tc.block_id))

    def run(executor):
        dev = Device(executor=executor)
        a = dev.alloc("a", 1, np.float64)
        kc = dev.launch(kernel, num_blocks=4, threads_per_block=32, args=(a,))
        return dev.to_numpy(a), kc

    a_s, kc_s = run(SerialExecutor())
    a_p, kc_p = run(ParallelExecutor(workers=2, processes=False))
    assert np.array_equal(a_s, a_p)
    assert a_p[0] == 3.0  # highest block id wins, as in the serial loop
    assert "cross_block_conflicts" not in kc_s.extra
    assert kc_p.extra["cross_block_conflicts"] == 1.0


@pytest.mark.parametrize("make_executor", VARIANTS)
def test_error_cutoff_equivalence(make_executor):
    """A faulting block re-raises with exactly the serial partial state:
    blocks below the cutoff land fully, the faulting block's prefix lands,
    blocks above the cutoff leave no trace."""

    def kernel(tc, out):
        if tc.block_id == 2 and tc.tid == 7:
            yield from tc.store(out, 10_000, 1.0)  # out of bounds
        yield from tc.store(out, tc.global_tid, float(tc.global_tid))

    def run(executor):
        dev = Device(executor=executor)
        out = dev.alloc("out", 256, np.float64)
        with pytest.raises(MemoryFault) as exc_info:
            dev.launch(kernel, num_blocks=8, threads_per_block=32,
                       args=(out,), executor=executor)
        return dev.to_numpy(out), str(exc_info.value)

    out_s, msg_s = run(SerialExecutor())
    out_p, msg_p = run(make_executor())
    assert np.array_equal(out_s, out_p)
    assert msg_s == msg_p
