"""Columnar exec-state machinery: merge apply, page capture, transport.

Pins the parallel executor's refactored data plane:

* ``allocated_since`` walks the handle table in insertion order — the
  micro-assertion that it yields ascending handles without sorting,
  including after free churn punches holes in the table;
* ``_capture_and_purge``/``_apply_records`` round-trip kernel-time
  allocations through the dirty-page wire format bit-identically;
* the columnar write-set apply (one gather/scatter per buffer) matches
  the per-cell semantics, including rollback on stale atomic reads;
* ``pack_records``/``unpack_records`` round-trip records bit-identically
  over both the inline and the shared-memory lanes.
"""

import numpy as np
import pytest

from repro.exec.engine import _apply_records, _capture_and_purge
from repro.exec.record import OP_ATOMIC, OP_STORE, BlockRecord
from repro.exec.transport import pack_records, unpack_records
from repro.gpu.memory import PAGE_ELEMS, GlobalMemory


class TestAllocatedSinceOrder:
    def test_insertion_order_is_ascending_handles(self):
        gmem = GlobalMemory()
        bufs = [gmem.alloc(f"b{i}", 8, np.float64) for i in range(16)]
        # Punch holes so insertion order is the only thing giving the
        # ascending walk (a sorted() would hide a regression here).
        for buf in bufs[1::3]:
            gmem.free(buf)
        for i in range(16, 24):
            gmem.alloc(f"b{i}", 8, np.float64)
        since = gmem.allocated_since(0)
        handles = [b.handle for b in since]
        assert handles == sorted(handles)
        assert len(handles) == len(set(handles))

    def test_mark_threshold(self):
        gmem = GlobalMemory()
        gmem.alloc("before", 8, np.float64)
        mark = gmem.mark()
        after = gmem.alloc("after", 8, np.float64)
        assert [b.handle for b in gmem.allocated_since(mark)] == [after.handle]


class TestPagedLiveAllocs:
    def test_capture_and_apply_round_trip(self):
        worker = GlobalMemory()
        mark = worker.mark()
        buf = worker.alloc("scratch", 4 * PAGE_ELEMS, np.float64)
        buf.write(1, 1.5)
        buf.write(2 * PAGE_ELEMS + 3, -2.5)
        want = buf.to_numpy()
        survivors = _capture_and_purge(worker, mark)
        assert len(survivors) == 1
        name, size, dtype, pages = survivors[0]
        # Only the two written pages travel.
        assert [p for p, _ in pages] == [0, 2]
        assert not worker.allocated_since(mark)

        coordinator = GlobalMemory()
        rec = BlockRecord(block_id=0, live_allocs=survivors)
        assert _apply_records(coordinator, [rec]) is False
        (rebuilt,) = coordinator.allocated_since(0)
        assert rebuilt.name == name and rebuilt.size == size
        np.testing.assert_array_equal(rebuilt.to_numpy(), want)


class TestColumnarApply:
    def test_write_set_applies_bitwise(self):
        gmem = GlobalMemory()
        a = gmem.from_array("a", np.zeros(2 * PAGE_ELEMS))
        b = gmem.from_array("b", np.zeros(8, dtype=np.int64))
        rec = BlockRecord(block_id=0, write_set={
            (a.handle, 0): np.float64(0.1),
            (a.handle, PAGE_ELEMS): np.float64(-0.2),
            (b.handle, 7): np.int64(2**62 + 1),  # must not round-trip via float
        })
        assert _apply_records(gmem, [rec]) is False
        assert a.data[0] == np.float64(0.1)
        assert a.data[PAGE_ELEMS] == np.float64(-0.2)
        assert b.data[7] == np.int64(2**62 + 1)

    def test_stale_atomic_read_rolls_back_everything(self):
        gmem = GlobalMemory()
        a = gmem.from_array("a", np.zeros(8))
        before = a.to_numpy()
        rec = BlockRecord(
            block_id=0,
            write_set={(a.handle, 1): np.float64(5.0)},
            # The block observed old=99 under its snapshot; live memory
            # says 0 — the merge must undo the write-set and report it.
            oplog=[(OP_ATOMIC, a.handle, 0, "add", 1.0, np.float64(99.0))],
        )
        assert _apply_records(gmem, [rec]) is True
        np.testing.assert_array_equal(a.to_numpy(), before)

    def test_plain_oplog_store_still_applies(self):
        gmem = GlobalMemory()
        a = gmem.from_array("a", np.zeros(8))
        rec = BlockRecord(
            block_id=0,
            oplog=[(OP_STORE, a.handle, 2, np.float64(3.0))],
        )
        assert _apply_records(gmem, [rec]) is False
        assert a.data[2] == 3.0


def _sample_records():
    counters = {"rounds": 3}
    recs = [
        BlockRecord(
            block_id=0,
            counters=counters,
            shared_used=128,
            completed=True,
            write_set={(5, i): np.float64(i) * 0.5 for i in range(300)},
            oplog=[(OP_ATOMIC, 5, 0, "add", 1.0, np.float64(0.0))],
            side_deltas=({"teams_entered": 1},),
            live_allocs=[("dyn", 8, np.dtype(np.float64),
                          [(0, np.ones(8))])],
        ),
        BlockRecord(
            block_id=1,
            completed=True,
            write_set={(7, 3): np.int64(-9)},
        ),
    ]
    return recs


def _assert_round_trip(records, out):
    assert len(out) == len(records)
    for want, got in zip(records, out):
        assert got.block_id == want.block_id
        assert got.completed == want.completed
        assert got.shared_used == want.shared_used
        assert list(got.write_set) == list(want.write_set)  # order too
        for key in want.write_set:
            a, b = want.write_set[key], got.write_set[key]
            assert a == b and np.asarray(a).dtype == np.asarray(b).dtype
        assert got.oplog == want.oplog
        assert got.side_deltas == want.side_deltas


class TestTransport:
    DTYPES = {5: np.dtype(np.float64), 7: np.dtype(np.int64)}

    def test_inline_round_trip(self):
        records = _sample_records()
        payload = pack_records(records, self.DTYPES, use_shm=False)
        assert payload[0] == "inline"
        _assert_round_trip(records, unpack_records(payload))

    def test_shared_memory_round_trip(self, monkeypatch):
        import repro.exec.transport as T

        monkeypatch.setattr(T, "SHM_MIN_BYTES", 1)  # force the shm lane
        records = _sample_records()
        payload = pack_records(records, self.DTYPES, use_shm=True)
        assert payload[0] == "shm"
        _assert_round_trip(records, unpack_records(payload))
        # The segment is gone after unpacking.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=payload[1])

    def test_raw_records_pass_through(self):
        records = _sample_records()
        assert unpack_records(records) is records
