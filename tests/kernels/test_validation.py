"""Run the on-device validation suite across the mode/geometry matrix."""

import pytest

from repro.errors import DeviceAssertionError
from repro.gpu.costmodel import amd_mi100, nvidia_a100
from repro.gpu.device import Device
from repro.kernels import validation as vv


@pytest.mark.parametrize("tight", [True, False], ids=["spmd", "generic"])
@pytest.mark.parametrize("simd_len", [1, 2, 8, 32])
class TestContractMatrix:
    def test_lane_mapping(self, simd_len, tight):
        vv.check_lane_mapping(Device(nvidia_a100()), simd_len=simd_len, tight=tight)

    def test_single_execution(self, simd_len, tight):
        vv.check_single_execution(Device(nvidia_a100()), simd_len=simd_len, tight=tight)

    def test_query_consistency(self, simd_len, tight):
        vv.check_query_consistency(Device(nvidia_a100()), simd_len=simd_len, tight=tight)


class TestSpecificContracts:
    def test_capture_fidelity_generic(self):
        vv.check_capture_fidelity(Device(nvidia_a100()), simd_len=8)

    def test_capture_fidelity_tiny_sharing_space_fallback(self):
        """Fidelity holds even when payloads overflow to global memory."""
        import numpy as np
        from repro.core import api as omp

        device = Device(nvidia_a100())

        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {f"c{k}": ivs[0] * 10 + k for k in range(6)}

        def body(tc, ivs, view):
            i, j = ivs
            for k in range(6):
                yield from tc.device_assert(
                    int(view[f"c{k}"]) == i * 10 + k, "capture corrupted"
                )

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                4,
                pre=pre,
                captures=[(f"c{k}", "i64") for k in range(6)],
                nested=omp.simd(8, body=body, uses=()),
                uses=(),
            )
        )
        r = omp.launch(device, tree, num_teams=1, team_size=64, simd_len=8,
                       args={}, sharing_bytes=64)
        assert r.runtime.sharing_fallbacks > 0  # the point of this test

    def test_implicit_barrier(self):
        vv.check_implicit_barrier(Device(nvidia_a100()))

    def test_suite_on_amd_spmd(self):
        """The SPMD half of the matrix also holds on 64-wide wavefronts."""
        vv.check_lane_mapping(Device(amd_mi100()), team_size=128, simd_len=8,
                              tight=True)
        vv.check_single_execution(Device(amd_mi100()), team_size=128,
                                  simd_len=8, tight=True)

    def test_assertions_actually_fire(self):
        """Meta-check: a broken contract is reported, not swallowed."""
        import numpy as np
        from repro.core import api as omp

        device = Device(nvidia_a100())

        def body(tc, ivs, view):
            yield from tc.device_assert(False, "intentional")

        tree = omp.target(
            omp.teams_distribute_parallel_for(
                2, nested=omp.simd(4, body=body, uses=()), uses=(),
            )
        )
        with pytest.raises(DeviceAssertionError, match="intentional"):
            omp.launch(device, tree, num_teams=1, team_size=32, simd_len=4, args={})
