"""Correctness tests for every evaluation kernel, across variants and
group sizes (small problem sizes; the benches run the full geometries)."""

import numpy as np
import pytest

from repro.gpu.costmodel import benchmark_profile
from repro.gpu.device import Device
from repro.kernels import (
    ideal,
    laplace3d,
    muram_interpol,
    muram_transpose,
    sparse_matvec,
    su3,
)
from repro.runtime.icv import ExecMode


@pytest.fixture
def dev():
    return Device(benchmark_profile())


class TestSparseMatvec:
    def test_two_level_matches_reference(self, dev):
        data = sparse_matvec.build_data(dev, n_rows=64, n_cols=64, mean_nnz=6)
        r = sparse_matvec.run_two_level(dev, data, num_teams=4, team_size=32)
        assert data.check()
        assert r.cfg.teams_mode is ExecMode.GENERIC

    @pytest.mark.parametrize("g", [1, 2, 8, 32])
    def test_simd_matches_reference(self, dev, g):
        data = sparse_matvec.build_data(dev, n_rows=64, n_cols=64, mean_nnz=6)
        r = sparse_matvec.run_simd(dev, data, simd_len=g, num_teams=4, team_size=64)
        assert data.check()
        assert r.cfg.teams_mode is ExecMode.SPMD
        assert r.cfg.parallel_mode is ExecMode.GENERIC

    def test_reduction_variant_matches(self, dev):
        data = sparse_matvec.build_data(dev, n_rows=64, n_cols=64, mean_nnz=6)
        r = sparse_matvec.run_simd_reduction(dev, data, simd_len=8,
                                             num_teams=4, team_size=64)
        assert data.check()
        assert r.counters.atomics == 0  # reductions remove the atomics

    def test_atomic_variant_uses_atomics(self, dev):
        data = sparse_matvec.build_data(dev, n_rows=64, n_cols=64, mean_nnz=6)
        r = sparse_matvec.run_simd(dev, data, simd_len=8, num_teams=4, team_size=64)
        assert r.counters.atomics == data.csr.nnz

    def test_empty_rows_handled(self, dev):
        """Rows with a zero trip count execute no iterations but still
        participate in the group protocol (hand-built CSR)."""
        from repro.kernels.common import CSRMatrix

        n = 8
        lengths = np.array([3, 0, 2, 0, 0, 4, 1, 0], dtype=np.int64)
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=row_ptr[1:])
        rng = np.random.default_rng(0)
        nnz = int(row_ptr[-1])
        csr = CSRMatrix(
            n_rows=n,
            n_cols=n,
            row_ptr=row_ptr,
            col_idx=rng.integers(0, n, nnz).astype(np.int64),
            values=rng.standard_normal(nnz),
            x=rng.standard_normal(n),
        )
        data = sparse_matvec.SpmvData(
            csr=csr,
            row_ptr=dev.from_array("rp", csr.row_ptr),
            col_idx=dev.from_array("ci", csr.col_idx),
            values=dev.from_array("v", csr.values),
            x=dev.from_array("x", csr.x),
            y=dev.from_array("y", np.zeros(n)),
        )
        sparse_matvec.run_simd(dev, data, simd_len=8, num_teams=1, team_size=32)
        assert data.check()


class TestSu3:
    def test_baseline_matches_reference(self, dev):
        data = su3.build_data(dev, sites=64)
        su3.run_baseline(dev, data, num_teams=2, team_size=32)
        assert data.check()

    @pytest.mark.parametrize("g", [2, 4, 32])
    def test_simd_matches_reference(self, dev, g):
        data = su3.build_data(dev, sites=64)
        r = su3.run_simd(dev, data, simd_len=g, num_teams=2, team_size=32)
        assert data.check()
        # Tight nesting: both levels SPMD, no state machine activity.
        assert r.cfg.parallel_mode is ExecMode.SPMD
        assert r.runtime.simd_wakeups == 0

    def test_inner_trip_is_36(self):
        assert su3.INNER_TRIP == 36


class TestIdeal:
    def test_baseline_matches_reference(self, dev):
        data = ideal.build_data(dev, n_rows=64)
        ideal.run_baseline(dev, data, num_teams=2, team_size=64)
        assert data.check()

    @pytest.mark.parametrize("g", [2, 16, 32])
    def test_simd_matches_reference(self, dev, g):
        data = ideal.build_data(dev, n_rows=64)
        r = ideal.run_simd(dev, data, simd_len=g, num_teams=2, team_size=64)
        assert data.check()
        # The indirection pre makes the parallel region generic (§6.3).
        assert r.cfg.parallel_mode is ExecMode.GENERIC


@pytest.mark.parametrize(
    "mod", [laplace3d, muram_transpose, muram_interpol],
    ids=["laplace3d", "transpose", "interpol"],
)
class TestFig10Kernels:
    def test_all_variants_match_reference(self, dev, mod):
        data = mod.build_data(dev, nx=6, ny=6)
        for variant in ("no_simd", "spmd_simd", "generic_simd"):
            r = mod.run(dev, data, variant, simd_len=8, num_teams=2, team_size=32)
            assert data.check(), f"{mod.__name__} {variant} mismatch"

    def test_modes_resolve_as_labelled(self, dev, mod):
        data = mod.build_data(dev, nx=6, ny=6)
        r_no = mod.run(dev, data, "no_simd", num_teams=2, team_size=32)
        assert r_no.cfg.simd_len == 1
        r_spmd = mod.run(dev, data, "spmd_simd", simd_len=8, num_teams=2, team_size=32)
        assert r_spmd.cfg.parallel_mode is ExecMode.SPMD
        r_gen = mod.run(dev, data, "generic_simd", simd_len=8, num_teams=2, team_size=32)
        assert r_gen.cfg.parallel_mode is ExecMode.GENERIC
        assert r_gen.runtime.simd_wakeups > 0


class TestCommonGenerators:
    def test_csr_structure_valid(self):
        from repro.kernels.common import make_csr

        csr = make_csr(n_rows=50, n_cols=40, mean_nnz=5, seed=1)
        assert csr.row_ptr[0] == 0
        assert np.all(np.diff(csr.row_ptr) >= 1)
        assert csr.nnz == len(csr.col_idx) == len(csr.values)
        assert csr.col_idx.min() >= 0 and csr.col_idx.max() < 40
        # Columns unique within each row.
        for r in range(50):
            cols = csr.col_idx[csr.row_ptr[r] : csr.row_ptr[r + 1]]
            assert len(set(cols)) == len(cols)

    def test_csr_matvec_matches_dense(self):
        from repro.kernels.common import make_csr

        csr = make_csr(n_rows=20, n_cols=20, mean_nnz=4, seed=3)
        assert np.allclose(csr.matvec(), csr.to_dense() @ csr.x)

    def test_csr_deterministic(self):
        from repro.kernels.common import make_csr

        a, b = make_csr(seed=9), make_csr(seed=9)
        assert np.array_equal(a.values, b.values)

    def test_su3_reference_matches_manual(self):
        from repro.kernels.common import make_complex_matrices, su3_reference

        a, b = make_complex_matrices(3, links=4, seed=2)
        ref = su3_reference(a, b)
        ac = a[..., 0] + 1j * a[..., 1]
        bc = b[..., 0] + 1j * b[..., 1]
        manual = ac[1, 2] @ bc[1]
        assert np.allclose(ref[1, 2, ..., 0], manual.real)
        assert np.allclose(ref[1, 2, ..., 1], manual.imag)

    def test_flat3(self):
        from repro.kernels.common import flat3

        assert flat3(1, 2, 3, ny=4, nz=5) == (1 * 4 + 2) * 5 + 3
