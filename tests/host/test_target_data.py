"""Tests for target-data regions: map semantics, updates, transfer costs."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.core import api as omp
from repro.host import MapKind, TargetDataRegion, target_data
from repro.host.target_data import InterconnectModel


class TestMapSemantics:
    def test_to_copies_in_not_out(self, device):
        host = np.arange(8.0)
        with target_data(device, x=(host, "to")) as region:
            buf = region.buffer("x")
            assert np.array_equal(buf.to_numpy(), host)
            buf.write(0, 99.0)
        assert host[0] == 0.0  # device change not copied back

    def test_from_copies_out_not_in(self, device):
        host = np.arange(8.0)
        with target_data(device, y=(host, "from")) as region:
            buf = region.buffer("y")
            assert np.all(buf.to_numpy() == 0.0)  # entry contents fresh
            buf.fill_from(np.full(8, 7.0))
        assert np.all(host == 7.0)

    def test_tofrom_round_trips(self, device):
        host = np.arange(8.0)
        with target_data(device, z=(host, MapKind.TOFROM)) as region:
            buf = region.buffer("z")
            buf.fill_from(buf.to_numpy() * 2)
        assert np.array_equal(host, 2.0 * np.arange(8))

    def test_alloc_never_transfers(self, device):
        host = np.arange(8.0)
        with target_data(device, s=(host, "alloc")) as region:
            region.buffer("s").write(0, 5.0)
        assert host[0] == 0.0
        assert region.counters.h2d_transfers == 0
        assert region.counters.d2h_transfers == 0

    def test_multidim_arrays_flatten(self, device):
        host = np.arange(12.0).reshape(3, 4)
        with target_data(device, m=(host, "tofrom")) as region:
            buf = region.buffer("m")
            buf.fill_from(np.zeros(12))
        assert np.all(host == 0.0)

    def test_buffers_freed_on_exit(self, device):
        live = device.gmem.live_bytes
        with target_data(device, x=(np.zeros(64), "to")):
            assert device.gmem.live_bytes > live
        assert device.gmem.live_bytes == live

    def test_exit_transfers_survive_exceptions(self, device):
        host = np.zeros(4)
        with pytest.raises(RuntimeError):
            with target_data(device, y=(host, "from")) as region:
                region.buffer("y").fill_from(np.ones(4))
                raise RuntimeError("kernel failed")
        assert np.all(host == 1.0)


class TestErrors:
    def test_unknown_mapping(self, device):
        with target_data(device, x=(np.zeros(4), "to")) as region:
            with pytest.raises(ReproError, match="no mapping"):
                region.buffer("ghost")

    def test_access_outside_region(self, device):
        region = target_data(device, x=(np.zeros(4), "to"))
        with pytest.raises(ReproError, match="not open"):
            region.buffers

    def test_double_open(self, device):
        region = target_data(device, x=(np.zeros(4), "to")).open()
        with pytest.raises(ReproError, match="already open"):
            region.open()
        region.close()

    def test_bad_kind(self, device):
        with pytest.raises(ValueError):
            target_data(device, x=(np.zeros(4), "sideways"))

    def test_object_arrays_rejected(self, device):
        with pytest.raises(ReproError, match="object arrays"):
            target_data(device, x=(np.array([object()]), "to"))


class TestUpdates:
    def test_update_to_and_from(self, device):
        host = np.arange(4.0)
        with target_data(device, x=(host, "to")) as region:
            host[:] = 100.0
            region.update_to("x")
            assert np.all(region.buffer("x").to_numpy() == 100.0)
            region.buffer("x").fill_from(np.full(4, 7.0))
            region.update_from("x")
            assert np.all(host == 7.0)


class TestTransferAccounting:
    def test_bytes_and_counts(self, device):
        host = np.zeros(128)  # 1 KiB
        with target_data(device, x=(host, "tofrom")) as region:
            pass
        c = region.counters
        assert c.h2d_bytes == 1024 and c.d2h_bytes == 1024
        assert c.h2d_transfers == 1 and c.d2h_transfers == 1
        assert c.transfer_us > 0

    def test_interconnect_model_math(self):
        model = InterconnectModel(bandwidth_gbps=10.0, latency_us=5.0)
        # 10 GB/s = 10 KB/us; 100 KB -> 10 us + 5 us latency.
        assert model.transfer_us(100_000) == pytest.approx(15.0)

    def test_resident_data_amortizes_transfers(self, device):
        """Two kernels inside one region: one h2d + one d2h, not two each."""

        def body(tc, ivs, view):
            (i,) = ivs
            v = yield from tc.load(view["x"], i)
            yield from tc.store(view["x"], i, v + 1.0)

        host = np.zeros(64)
        tree = omp.target(omp.teams_distribute_parallel_for(64, body=body))
        kernel = omp.compile(tree, ("x",))
        with target_data(device, x=(host, "tofrom")) as region:
            for _ in range(5):
                omp.launch(device, kernel, num_teams=1, team_size=64,
                           args=region.buffers)
        assert np.all(host == 5.0)
        assert region.counters.h2d_transfers == 1
        assert region.counters.d2h_transfers == 1
