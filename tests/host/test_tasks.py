"""Tests for deferred target tasks (nowait + depend scheduling)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.core import api as omp
from repro.host.tasks import TaskQueue


def scale_kernel(factor):
    def body(tc, ivs, view):
        (i,) = ivs
        v = yield from tc.load(view["buf"], i)
        yield from tc.compute("fma")
        yield from tc.store(view["buf"], i, v * factor)

    return omp.compile(
        omp.target(omp.teams_distribute_parallel_for(64, body=body)),
        ("buf",),
        name=f"scale{factor}",
    )


def add_kernel(dst, src):
    def body(tc, ivs, view):
        (i,) = ivs
        a = yield from tc.load(view[dst], i)
        b = yield from tc.load(view[src], i)
        yield from tc.store(view[dst], i, a + b)

    return omp.compile(
        omp.target(omp.teams_distribute_parallel_for(64, body=body)),
        (dst, src),
        name=f"add.{dst}+{src}",
    )


@pytest.fixture
def queue(device):
    return TaskQueue(device, num_streams=4)


def geometry():
    return dict(num_teams=2, team_size=32)


class TestFunctionalOrdering:
    def test_dependent_chain_computes_in_order(self, device, queue):
        buf = device.from_array("a", np.ones(64))
        k2, k3 = scale_kernel(2.0), scale_kernel(3.0)
        queue.submit(k2, {"buf": buf}, depend_in=("a",), depend_out=("a",), **geometry())
        queue.submit(k3, {"buf": buf}, depend_in=("a",), depend_out=("a",), **geometry())
        queue.taskwait()
        assert np.all(buf.to_numpy() == 6.0)

    def test_flow_dependency_edges(self, device, queue):
        a = device.from_array("a", np.ones(64))
        b = device.from_array("b", np.full(64, 2.0))
        c = device.from_array("c", np.zeros(64))
        t0 = queue.submit(scale_kernel(5.0), {"buf": a},
                          depend_in=("a",), depend_out=("a",), **geometry())
        t1 = queue.submit(scale_kernel(7.0), {"buf": b},
                          depend_in=("b",), depend_out=("b",), **geometry())
        t2 = queue.submit(add_kernel("c", "a"), {"c": c, "a": a},
                          depend_in=("a", "c"), depend_out=("c",), **geometry())
        assert t0.predecessors == ()
        assert t1.predecessors == ()  # independent: no edge
        assert t0.task_id in t2.predecessors
        assert t1.task_id not in t2.predecessors
        assert np.all(c.to_numpy() == 5.0)

    def test_anti_dependency(self, device, queue):
        """A writer must wait for earlier readers of the same token."""
        a = device.from_array("a", np.ones(64))
        c = device.from_array("c", np.zeros(64))
        reader = queue.submit(add_kernel("c", "a"), {"c": c, "a": a},
                              depend_in=("a",), depend_out=("c",), **geometry())
        writer = queue.submit(scale_kernel(2.0), {"buf": a},
                              depend_in=(), depend_out=("a",), **geometry())
        assert reader.task_id in writer.predecessors


class TestTimelineModel:
    def test_independent_tasks_overlap(self, device, queue):
        bufs = [device.from_array(f"b{i}", np.ones(64)) for i in range(4)]
        k = scale_kernel(2.0)
        for i, b in enumerate(bufs):
            queue.submit(k, {"buf": b}, depend_in=(f"b{i}",),
                         depend_out=(f"b{i}",), **geometry())
        assert queue.makespan_us < queue.serial_us
        assert {t.stream for t in queue.tasks} == {0, 1, 2, 3}

    def test_dependent_tasks_serialize_on_timeline(self, device, queue):
        buf = device.from_array("a", np.ones(64))
        k = scale_kernel(2.0)
        t0 = queue.submit(k, {"buf": buf}, depend_in=("a",), depend_out=("a",), **geometry())
        t1 = queue.submit(k, {"buf": buf}, depend_in=("a",), depend_out=("a",), **geometry())
        assert t1.start_us >= t0.finish_us
        assert queue.makespan_us == pytest.approx(queue.serial_us)

    def test_stream_limit_caps_overlap(self, device):
        q = TaskQueue(device, num_streams=2)
        k = scale_kernel(2.0)
        for i in range(4):
            b = device.from_array(f"b{i}", np.ones(64))
            q.submit(k, {"buf": b}, depend_in=(), depend_out=(f"b{i}",),
                     **geometry())
        # 4 equal tasks on 2 streams: makespan ~ half the serial time.
        assert q.makespan_us == pytest.approx(q.serial_us / 2, rel=0.01)

    def test_taskwait_fences_timeline(self, device, queue):
        k = scale_kernel(2.0)
        b0 = device.from_array("b0", np.ones(64))
        t0 = queue.submit(k, {"buf": b0}, depend_out=("b0",), **geometry())
        wall = queue.taskwait()
        b1 = device.from_array("b1", np.ones(64))
        t1 = queue.submit(k, {"buf": b1}, depend_out=("b1",), **geometry())
        assert t1.start_us >= wall >= t0.finish_us

    def test_describe(self, device, queue):
        b = device.from_array("b", np.ones(64))
        queue.submit(scale_kernel(2.0), {"buf": b}, depend_out=("b",), **geometry())
        text = queue.describe()
        assert "target tasks" in text and "stream" in text


def test_invalid_stream_count(device):
    with pytest.raises(ReproError):
        TaskQueue(device, num_streams=0)
