"""Application-level integration tests built on the examples' patterns."""

import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
sys.path.insert(0, str(EXAMPLES))


class TestConjugateGradient:
    def test_solver_converges_and_matches_numpy(self):
        cg = __import__("conjugate_gradient")
        x, expect, iters = cg.solve(n=64, verbose=False)
        assert np.allclose(x, expect, atol=1e-6)
        assert 0 < iters < 64

    def test_spd_generator_is_spd(self):
        cg = __import__("conjugate_gradient")
        dense, row_ptr, col_idx, values = cg.make_spd_csr(32)
        assert np.allclose(dense, dense.T)
        eigvals = np.linalg.eigvalsh(dense)
        assert eigvals.min() > 0
        # CSR faithfully encodes the dense matrix.
        rebuilt = np.zeros_like(dense)
        for i in range(32):
            lo, hi = row_ptr[i], row_ptr[i + 1]
            rebuilt[i, col_idx[lo:hi]] = values[lo:hi]
        assert np.allclose(rebuilt, dense)


class TestExamplesRun:
    """Every example script must execute end-to-end (they self-verify)."""

    @pytest.mark.parametrize(
        "module",
        ["quickstart", "stencil_modes", "pragma_and_portability", "host_data"],
    )
    def test_example_main(self, module, capsys):
        mod = __import__(module)
        if hasattr(mod, "main"):
            mod.main()
        else:  # pragma_and_portability exposes parts
            mod.part1_pragma_frontend()
            mod.part2_guarded_spmdization()
            mod.part3_amd_demotion()
        out = capsys.readouterr().out
        assert any(tok in out for tok in ("✓", "takeaway", "transfer savings"))
