"""Golden regression tests: exact cost-model outputs for pinned configs.

The simulator is fully deterministic, so these values are exact.  They
exist to catch *unintentional* cost-model drift — if you deliberately
retune the model (see DESIGN.md §2), rerun the configs below and update
the numbers together with EXPERIMENTS.md.
"""

import pytest

from repro.perf.experiment import run_fig9, run_fig10

# Pinned on cost-model contract v1.0 (see DESIGN.md).
GOLDEN_SPMV_QUICK = {
    "baseline": 21110.0,
    2: 13100.0,
    4: 8150.0,
    8: 4762.0,
    16: 5364.0,
    32: 6334.0,
}

GOLDEN_LAPLACE_QUICK = {
    "no_simd": 2500.0,
    "spmd_simd": 3162.0,
    "generic_simd": 3236.0,
}


def test_sparse_matvec_quick_cycles_exact():
    r = run_fig9("sparse_matvec", quick=True)
    assert r.baseline_cycles == GOLDEN_SPMV_QUICK["baseline"]
    for g in (2, 4, 8, 16, 32):
        assert r.cycles[g] == GOLDEN_SPMV_QUICK[g], f"group {g} drifted"


def test_laplace_quick_cycles_exact():
    r = run_fig10("laplace3d", quick=True)
    for variant, expect in GOLDEN_LAPLACE_QUICK.items():
        assert r.cycles[variant] == expect, f"{variant} drifted"


def test_goldens_are_self_consistent():
    """The pinned numbers encode the expected orderings too."""
    assert GOLDEN_SPMV_QUICK[8] < GOLDEN_SPMV_QUICK[2]
    assert GOLDEN_LAPLACE_QUICK["no_simd"] < GOLDEN_LAPLACE_QUICK["generic_simd"]
