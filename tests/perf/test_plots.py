"""Tests for the SVG figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.perf.experiment import run_fig9, run_fig10
from repro.perf.plots import fig9_svg, fig10_svg, save_svg


@pytest.fixture(scope="module")
def fig9_result():
    return run_fig9("benchmark_kernel", quick=True)


@pytest.fixture(scope="module")
def fig10_result():
    return run_fig10("muram_transpose", quick=True)


def test_fig9_svg_is_valid_xml(fig9_result):
    svg = fig9_svg(fig9_result)
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    rects = [e for e in root.iter() if e.tag.endswith("rect")]
    # background + one bar per group size
    assert len(rects) == 1 + len(fig9_result.speedups)


def test_fig9_svg_includes_paper_reference(fig9_result):
    svg = fig9_svg(fig9_result)
    assert "paper max" in svg
    assert "benchmark_kernel" in svg


def test_fig10_svg_bars_and_reference(fig10_result):
    svg = fig10_svg(fig10_result)
    root = ET.fromstring(svg)
    rects = [e for e in root.iter() if e.tag.endswith("rect")]
    assert len(rects) == 1 + 3  # background + three variants
    assert "muram_transpose" in svg


def test_save_svg(tmp_path, fig10_result):
    path = tmp_path / "fig.svg"
    save_svg(fig10_svg(fig10_result), str(path))
    assert path.read_text().startswith("<svg")


def test_cli_svg_output(tmp_path, capsys):
    from repro.perf.__main__ import main

    out_dir = tmp_path / "figs"
    assert main(["--quick", "--only", "laplace3d", "--svg", str(out_dir)]) == 0
    files = list(out_dir.glob("*.svg"))
    assert len(files) == 1
    ET.fromstring(files[0].read_text())  # valid XML
