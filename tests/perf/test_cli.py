"""Tests for the ``python -m repro.perf`` command-line entry."""

import pytest

from repro.perf.__main__ import main


def test_single_series_quick(capsys):
    assert main(["--quick", "--only", "benchmark_kernel"]) == 0
    out = capsys.readouterr().out
    assert "Fig 9 — benchmark_kernel" in out
    assert "paper: max" in out


def test_fig10_series_quick(capsys):
    assert main(["--quick", "--only", "muram_transpose"]) == 0
    out = capsys.readouterr().out
    assert "Fig 10 — muram_transpose" in out


def test_markdown_output(tmp_path, capsys):
    path = tmp_path / "results.md"
    assert main(["--quick", "--only", "laplace3d", "--markdown", str(path)]) == 0
    text = path.read_text()
    assert "Fig 10 (measured)" in text
    assert "laplace3d" in text


def test_unknown_series_rejected():
    with pytest.raises(SystemExit):
        main(["--only", "nbody"])
