"""Tests for the group-size auto-tuner (§6.5 mechanized)."""

import pytest
from hypothesis import given, strategies as st

from repro.perf.autotune import TuneResult, best_simd_len, candidate_groups, lane_waste


class TestLaneWaste:
    def test_exact_division_no_waste(self):
        assert lane_waste(36, 4) == 0.0
        assert lane_waste(32, 32) == 0.0

    def test_partial_pass_waste(self):
        # 36 over 32 lanes: 2 passes, 64 slots, 28 idle.
        assert lane_waste(36, 32) == pytest.approx(28 / 64)

    def test_zero_trip(self):
        assert lane_waste(0, 8) == 0.0

    @given(
        trip=st.integers(min_value=1, max_value=500),
        group=st.sampled_from([1, 2, 4, 8, 16, 32]),
    )
    def test_waste_bounds(self, trip, group):
        w = lane_waste(trip, group)
        assert 0.0 <= w < 1.0
        if trip % group == 0:
            assert w == 0.0


class TestCandidates:
    def test_divisors_of_warp(self):
        assert candidate_groups(32) == (1, 2, 4, 8, 16, 32)
        assert candidate_groups(64) == (1, 2, 4, 8, 16, 32, 64)

    def test_waste_filter(self):
        cands = candidate_groups(32, inner_trip=36, max_waste=0.05)
        assert 4 in cands and 32 not in cands

    def test_filter_never_empties(self):
        cands = candidate_groups(32, inner_trip=1, max_waste=0.0)
        assert 1 in cands  # trip 1: only group 1 has zero waste
        cands_all = candidate_groups(32, inner_trip=31, max_waste=0.0)
        assert cands_all == (1, 2, 4, 8, 16, 32) or 1 in cands_all


class TestBestSimdLen:
    def test_picks_minimum(self):
        costs = {1: 100.0, 2: 60.0, 4: 40.0, 8: 55.0}
        result = best_simd_len(lambda g: costs[g], groups=(1, 2, 4, 8))
        assert result.best == 4
        assert result.speedup_over_worst == pytest.approx(100 / 40)
        assert "g=4" in result.describe()

    def test_with_real_kernel(self):
        from repro.gpu.costmodel import benchmark_profile
        from repro.gpu.device import Device
        from repro.kernels import sparse_matvec as spmv

        def run(g):
            dev = Device(benchmark_profile())
            data = spmv.build_data(dev, n_rows=96, n_cols=96, mean_nnz=8)
            r = spmv.run_simd(dev, data, simd_len=g, num_teams=4, team_size=64)
            assert data.check()
            return r.cycles

        result = best_simd_len(run, groups=(2, 8, 32))
        assert result.best in (2, 8, 32)
        assert len(result.cycles) == 3
