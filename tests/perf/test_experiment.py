"""Tests for the experiment harness and report formatting (quick mode)."""

import pytest

from repro.errors import ReproError
from repro.perf.experiment import (
    FIG9_GROUPS,
    PAPER_FIG9,
    PAPER_FIG10,
    run_fig9,
    run_fig10,
)
from repro.perf.report import (
    ascii_bars,
    experiments_md_fig9,
    experiments_md_fig10,
    fig9_table,
    fig10_table,
)
from repro.perf.sweep import group_size_sweep, sweep


class TestFig9Harness:
    @pytest.mark.parametrize("kernel", sorted(PAPER_FIG9))
    def test_quick_run_structure(self, kernel):
        r = run_fig9(kernel, quick=True)
        assert set(r.speedups) == set(FIG9_GROUPS)
        assert r.baseline_cycles > 0
        assert all(c > 0 for c in r.cycles.values())
        assert r.best_group in FIG9_GROUPS
        assert r.paper["max_speedup"] > 1.0

    def test_unknown_kernel(self):
        with pytest.raises(ReproError, match="unknown Fig 9"):
            run_fig9("nbody")

    def test_sparse_quick_still_wins_at_eight(self):
        r = run_fig9("sparse_matvec", quick=True)
        assert r.speedups[8] > 1.0


class TestFig10Harness:
    @pytest.mark.parametrize("kernel", sorted(PAPER_FIG10))
    def test_quick_run_structure(self, kernel):
        r = run_fig10(kernel, quick=True)
        assert set(r.relative) == {"no_simd", "spmd_simd", "generic_simd"}
        assert r.relative["no_simd"] == 1.0
        assert r.relative["generic_simd"] < 1.05

    def test_unknown_kernel(self):
        with pytest.raises(ReproError, match="unknown Fig 10"):
            run_fig10("stream")


class TestReportFormatting:
    def test_fig9_table_mentions_paper(self):
        r = run_fig9("benchmark_kernel", quick=True)
        text = fig9_table(r)
        assert "paper: max" in text and "benchmark_kernel" in text

    def test_fig10_table(self):
        r = run_fig10("muram_transpose", quick=True)
        text = fig10_table(r)
        assert "no_simd" in text and "paper" in text

    def test_ascii_bars(self):
        text = ascii_bars({"a": 1.0, "b": 2.0})
        assert "#" in text and "2.00x" in text

    def test_ascii_bars_empty(self):
        assert ascii_bars({}) == "(empty)"

    def test_experiments_md_rows(self):
        r9 = run_fig9("benchmark_kernel", quick=True)
        md = experiments_md_fig9([r9])
        assert md.count("|") > 8 and "benchmark_kernel" in md
        r10 = run_fig10("laplace3d", quick=True)
        md10 = experiments_md_fig10([r10])
        assert "laplace3d" in md10


class TestSweeps:
    def test_generic_sweep_fresh_devices(self):
        seen = []

        def run_one(device, value):
            seen.append(device)
            return value * 2

        out = sweep([1, 2, 3], run_one)
        assert [v for v, _ in out] == [1, 2, 3]
        assert [r for _, r in out] == [2, 4, 6]
        assert len({id(d) for d in seen}) == 3

    def test_group_size_sweep_defaults(self):
        out = group_size_sweep(lambda dev, g: g)
        assert [v for v, _ in out] == [1, 2, 4, 8, 16, 32]
