"""Documentation guards: the README's code block must run; cross-referenced
files and bench targets must exist."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def test_readme_quickstart_block_executes(tmp_path):
    """Extract the first python fence from README.md and run it."""
    text = (ROOT / "README.md").read_text()
    match = re.search(r"```python\n(.*?)```", text, re.S)
    assert match, "README must contain a python example"
    script = tmp_path / "readme_snippet.py"
    script.write_text(match.group(1))
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, proc.stderr


def test_design_bench_targets_exist():
    """Every bench target DESIGN.md's experiment index names must exist."""
    text = (ROOT / "DESIGN.md").read_text()
    targets = re.findall(r"`benchmarks/(bench_\w+\.py)::(\w+)`", text)
    assert targets, "DESIGN.md must index bench targets"
    for fname, func in targets:
        path = ROOT / "benchmarks" / fname
        assert path.exists(), f"{fname} missing"
        assert f"def {func}(" in path.read_text(), f"{fname}::{func} missing"


def test_design_module_map_files_exist():
    """Module paths named in DESIGN.md's inventory must exist."""
    text = (ROOT / "DESIGN.md").read_text()
    for mod in re.findall(r"^\s{4}(\w+\.py)\b", text, re.M):
        hits = list((ROOT / "src" / "repro").rglob(mod))
        assert hits, f"DESIGN.md names {mod} but it does not exist"


def test_top_level_docs_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE", "CHANGELOG.md"):
        assert (ROOT / name).exists(), name


def test_examples_listed_in_readme_exist():
    text = (ROOT / "README.md").read_text()
    for name in re.findall(r"`(\w+\.py)` \|", text):
        assert (ROOT / "examples" / name).exists(), name


def test_all_public_modules_have_docstrings():
    import importlib
    import pkgutil

    import repro

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mod = importlib.import_module(info.name)
        if not (mod.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"
